#ifndef AUXVIEW_COMMON_FAILPOINT_H_
#define AUXVIEW_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace auxview {

/// Named fault-injection points (the catalog lives in docs/ROBUSTNESS.md).
///
/// A failpoint is a site that can be asked — by tests, the shell's `.fail`
/// command, or the AUXVIEW_FAILPOINTS environment variable — to fail with a
/// clean Status instead of doing its work. The atomic-commit machinery is
/// proven by arming each point in turn and checking that the database comes
/// back bit-identical (tests/failpoint_test.cc).
///
/// Every site threaded through the code base is pre-registered, so Names()
/// enumerates the full catalog before anything has executed. Disarmed
/// overhead is a single relaxed atomic load per site, so the points stay
/// compiled in everywhere, including the benches (whose paper cost tables
/// must not move when no fault is armed).
///
/// Trigger counts are exported through the obs metrics registry as
/// `failpoint.triggers` (total) and `failpoint.<name>.triggers`.
class FailpointRegistry {
 public:
  /// How an armed failpoint decides to fire.
  struct Arming {
    /// Fires on the nth Check() after arming (1 = the very next hit), then
    /// disarms itself. Ignored when `probability` > 0.
    int64_t nth_hit = 1;
    /// When > 0, fires independently with this probability on every hit and
    /// stays armed until Disarm.
    double probability = 0;
  };

  static FailpointRegistry& Global();

  /// Registered names, sorted (the pre-registered catalog plus any names
  /// armed on the fly).
  std::vector<std::string> Names() const;

  /// Arms `name`; unknown names register on first use so tests can define
  /// private points.
  void Arm(const std::string& name, Arming arming);
  /// Convenience: fire on the nth hit from now (1 = next), then disarm.
  void ArmAfter(const std::string& name, int64_t nth_hit = 1);
  /// Convenience: fire each hit with probability `p` until disarmed.
  void ArmProbability(const std::string& name, double p, uint64_t seed = 42);
  void Disarm(const std::string& name);
  void DisarmAll();

  bool armed(const std::string& name) const;
  /// Times the site executed while any failpoint was armed (the fast path
  /// skips counting entirely when the registry is idle).
  int64_t hits(const std::string& name) const;
  /// Times the site fired since process start.
  int64_t triggers(const std::string& name) const;

  /// The per-site check: Ok unless `name` is armed and decides to fire, in
  /// which case an Aborted status naming the failpoint is returned. Sites
  /// call this through AUXVIEW_FAILPOINT.
  Status Check(const char* name);

  /// Parses and applies an arming spec (the AUXVIEW_FAILPOINTS format):
  /// `name=N` arms at the Nth hit, `name=pP` arms with probability P;
  /// multiple entries separate with `,` or `;`. Example:
  ///   AUXVIEW_FAILPOINTS="storage.table.apply=3,maintain.fetch=p0.01"
  Status LoadSpec(const std::string& spec);

 private:
  friend class FailpointSuspension;

  struct State {
    bool armed = false;
    int64_t countdown = 0;  // nth-hit mode: fires when it reaches zero
    double probability = 0;
    uint64_t rng_state = 0;  // splitmix64 state for probability mode
    int64_t hits = 0;
    int64_t triggers = 0;
  };

  FailpointRegistry();

  /// Registers (idempotently) and returns the state for `name`; mu_ held.
  State& StateFor(const std::string& name);

  mutable std::mutex mu_;
  std::map<std::string, State> points_;
  /// Number of currently armed points; the disarmed fast path is one load.
  std::atomic<int64_t> armed_count_{0};
  /// Suspension depth; > 0 disables every failpoint (rollback paths).
  std::atomic<int64_t> suspended_{0};
};

/// RAII guard disabling every failpoint for a scope. Rollback runs under
/// this guard: undo must never itself be injected with a fault.
class FailpointSuspension {
 public:
  FailpointSuspension() {
    FailpointRegistry::Global().suspended_.fetch_add(
        1, std::memory_order_relaxed);
  }
  ~FailpointSuspension() {
    FailpointRegistry::Global().suspended_.fetch_sub(
        1, std::memory_order_relaxed);
  }

  FailpointSuspension(const FailpointSuspension&) = delete;
  FailpointSuspension& operator=(const FailpointSuspension&) = delete;
};

/// Drops a named failpoint into a Status-returning function.
#define AUXVIEW_FAILPOINT(name)                                       \
  do {                                                                \
    ::auxview::Status _fp_status =                                    \
        ::auxview::FailpointRegistry::Global().Check(name);           \
    if (!_fp_status.ok()) return _fp_status;                          \
  } while (false)

}  // namespace auxview

#endif  // AUXVIEW_COMMON_FAILPOINT_H_
