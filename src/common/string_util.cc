#include "common/string_util.h"

#include <cctype>

namespace auxview {

namespace {
template <typename Container>
std::string JoinImpl(const Container& parts, const std::string& sep) {
  std::string out;
  bool first = true;
  for (const std::string& p : parts) {
    if (!first) out += sep;
    out += p;
    first = false;
  }
  return out;
}
}  // namespace

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  return JoinImpl(parts, sep);
}

std::string Join(const std::set<std::string>& parts, const std::string& sep) {
  return JoinImpl(parts, sep);
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(a[i]) != std::tolower(b[i])) return false;
  }
  return true;
}

}  // namespace auxview
