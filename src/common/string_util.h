#ifndef AUXVIEW_COMMON_STRING_UTIL_H_
#define AUXVIEW_COMMON_STRING_UTIL_H_

#include <set>
#include <string>
#include <vector>

namespace auxview {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);
std::string Join(const std::set<std::string>& parts, const std::string& sep);

/// Lowercases ASCII.
std::string ToLower(const std::string& s);
/// Uppercases ASCII.
std::string ToUpper(const std::string& s);

/// Case-insensitive ASCII equality (SQL keywords/identifiers).
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

}  // namespace auxview

#endif  // AUXVIEW_COMMON_STRING_UTIL_H_
