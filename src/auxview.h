#ifndef AUXVIEW_AUXVIEW_H_
#define AUXVIEW_AUXVIEW_H_

/// \mainpage auxview
///
/// A from-scratch reproduction of Ross, Srivastava & Sudarshan,
/// "Materialized View Maintenance and Integrity Constraint Checking:
/// Trading Space for Time" (SIGMOD 1996).
///
/// Typical flow:
///   1. Declare base relations in a Catalog (or via SQL + Binder).
///   2. Build the view's algebra tree (ExprBuilder or SQL).
///   3. BuildExpandedMemo -> the expression DAG.
///   4. ViewSelector::Exhaustive / Shielding / heuristics -> the view set
///      to materialize and the per-transaction update tracks.
///   5. ViewManager::Materialize + ApplyTransaction -> runtime maintenance.
///   6. AssertionChecker -> SQL-92 assertion checking on maintained views.

#include "algebra/builder.h"
#include "api/session.h"
#include "api/txn_session.h"
#include "algebra/expr.h"
#include "algebra/scalar.h"
#include "concurrency/conflict.h"
#include "concurrency/controller.h"
#include "concurrency/delta_set.h"
#include "concurrency/snapshot.h"
#include "concurrency/writer.h"
#include "catalog/catalog.h"
#include "catalog/fd.h"
#include "catalog/schema.h"
#include "catalog/statistics.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/value.h"
#include "cost/io_cost_model.h"
#include "cost/query_cost.h"
#include "cost/statistics_propagation.h"
#include "delta/analysis.h"
#include "delta/delta.h"
#include "delta/transaction.h"
#include "exec/executor.h"
#include "exec/relation.h"
#include "maintain/assertion.h"
#include "maintain/concrete.h"
#include "maintain/delta_engine.h"
#include "maintain/view_manager.h"
#include "memo/articulation.h"
#include "memo/dot.h"
#include "memo/expand.h"
#include "memo/fd_analysis.h"
#include "memo/memo.h"
#include "memo/rules.h"
#include "obs/metrics.h"
#include "optimizer/optimizer.h"
#include "optimizer/explain.h"
#include "optimizer/select_views.h"
#include "optimizer/track.h"
#include "optimizer/track_cost.h"
#include "optimizer/view_set.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "storage/database.h"
#include "storage/table.h"
#include "storage/undo_log.h"
#include "storage/wal/wal.h"
#include "workload/chain.h"
#include "workload/emp_dept.h"
#include "workload/fig5.h"
#include "workload/star.h"
#include "workload/txn_stream.h"

#endif  // AUXVIEW_AUXVIEW_H_
