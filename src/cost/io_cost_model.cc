#include "cost/io_cost_model.h"

namespace auxview {

double IoCostModel::ApplyDelta(UpdateKind kind, double rows, int num_indexes,
                               bool indexed_attrs_change) const {
  if (rows <= 0) return 0;
  const double idx = static_cast<double>(num_indexes);
  switch (kind) {
    case UpdateKind::kModify: {
      double cost = idx * params_.index_page_read +
                    rows * (params_.tuple_page_read + params_.tuple_page_write);
      if (indexed_attrs_change) cost += idx * params_.index_page_write;
      return cost;
    }
    case UpdateKind::kInsert:
      return idx * (params_.index_page_read + params_.index_page_write) +
             rows * params_.tuple_page_write;
    case UpdateKind::kDelete:
      return idx * (params_.index_page_read + params_.index_page_write) +
             rows * (params_.tuple_page_read + params_.tuple_page_write);
  }
  return 0;
}

}  // namespace auxview
