#include "cost/statistics_propagation.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace auxview {

const RelationStats& StatsAnalysis::StatsOf(GroupId g) {
  g = memo_->Find(g);
  auto it = cache_.find(g);
  if (it != cache_.end()) return it->second;
  RelationStats stats = Compute(g);
  return cache_.emplace(g, std::move(stats)).first->second;
}

double StatsAnalysis::DistinctJoint(const RelationStats& stats,
                                    const std::vector<std::string>& attrs) {
  double d = 1;
  for (const std::string& a : attrs) {
    d = std::max(d, stats.DistinctOf(a));
  }
  return std::min(d, std::max(stats.row_count, 1.0));
}

double StatsAnalysis::RowsPerJointValue(const RelationStats& stats,
                                        const std::vector<std::string>& attrs) {
  if (stats.row_count <= 0) return 0;
  return stats.row_count / DistinctJoint(stats, attrs);
}

double StatsAnalysis::Selectivity(const Scalar& pred,
                                  const RelationStats& input) {
  switch (pred.op()) {
    case ScalarOp::kAnd:
      return Selectivity(*pred.children()[0], input) *
             Selectivity(*pred.children()[1], input);
    case ScalarOp::kOr: {
      const double a = Selectivity(*pred.children()[0], input);
      const double b = Selectivity(*pred.children()[1], input);
      return std::min(1.0, a + b - a * b);
    }
    case ScalarOp::kNot:
      return std::max(0.0, 1.0 - Selectivity(*pred.children()[0], input));
    case ScalarOp::kEq: {
      const Scalar& l = *pred.children()[0];
      const Scalar& r = *pred.children()[1];
      if (l.op() == ScalarOp::kColumn && r.op() == ScalarOp::kLiteral) {
        return 1.0 / input.DistinctOf(l.column_name());
      }
      if (r.op() == ScalarOp::kColumn && l.op() == ScalarOp::kLiteral) {
        return 1.0 / input.DistinctOf(r.column_name());
      }
      if (l.op() == ScalarOp::kColumn && r.op() == ScalarOp::kColumn) {
        return 1.0 / std::max(input.DistinctOf(l.column_name()),
                              input.DistinctOf(r.column_name()));
      }
      return 0.1;
    }
    case ScalarOp::kLt:
    case ScalarOp::kLe:
    case ScalarOp::kGt:
    case ScalarOp::kGe:
    case ScalarOp::kNe:
      return 1.0 / 3.0;
    case ScalarOp::kLiteral:
      // Constant TRUE/FALSE predicates.
      if (pred.literal().type() == ValueType::kBool) {
        return pred.literal().boolean() ? 1.0 : 0.0;
      }
      return 1.0;
    default:
      return 1.0 / 3.0;
  }
}

RelationStats StatsAnalysis::Compute(GroupId g) {
  const MemoGroup& grp = memo_->group(g);
  if (grp.is_leaf) {
    const TableDef* def = catalog_->FindTable(grp.table);
    return def != nullptr ? def->stats : RelationStats{};
  }
  const MemoExpr* e = nullptr;
  for (int eid : grp.exprs) {
    if (!memo_->expr(eid).dead) {
      e = &memo_->expr(eid);
      break;
    }
  }
  AUXVIEW_CHECK(e != nullptr);
  RelationStats out;
  switch (e->kind()) {
    case OpKind::kScan:
      break;
    case OpKind::kSelect: {
      const RelationStats in = StatsOf(e->inputs[0]);
      const double sel = Selectivity(*e->op->predicate(), in);
      out = in;
      out.row_count = in.row_count * sel;
      break;
    }
    case OpKind::kProject: {
      const RelationStats in = StatsOf(e->inputs[0]);
      out.row_count = in.row_count;
      for (const ProjectItem& item : e->op->projections()) {
        if (item.expr->op() == ScalarOp::kColumn) {
          out.distinct[item.name] = in.DistinctOf(item.expr->column_name());
        }
      }
      break;
    }
    case OpKind::kJoin: {
      const RelationStats a = StatsOf(e->inputs[0]);
      const RelationStats b = StatsOf(e->inputs[1]);
      const std::vector<std::string>& s = e->op->join_attrs();
      const double da = DistinctJoint(a, s);
      const double db = DistinctJoint(b, s);
      const double denom = std::max({da, db, 1.0});
      out.row_count = a.row_count * b.row_count / denom;
      out.distinct = a.distinct;
      for (const auto& [attr, d] : b.distinct) {
        auto it = out.distinct.find(attr);
        if (it == out.distinct.end()) {
          out.distinct[attr] = d;
        } else {
          it->second = std::min(it->second, d);
        }
      }
      break;
    }
    case OpKind::kAggregate: {
      const RelationStats in = StatsOf(e->inputs[0]);
      out.row_count = DistinctJoint(in, e->op->group_by());
      for (const std::string& gb : e->op->group_by()) {
        out.distinct[gb] = in.DistinctOf(gb);
      }
      for (const AggSpec& agg : e->op->aggs()) {
        out.distinct[agg.output_name] = out.row_count;
      }
      break;
    }
    case OpKind::kDupElim: {
      const RelationStats in = StatsOf(e->inputs[0]);
      std::vector<std::string> all_cols;
      for (const Column& c : grp.schema.columns()) all_cols.push_back(c.name);
      out = in;
      out.row_count = DistinctJoint(in, all_cols);
      break;
    }
  }
  // Clamp distinct counts to the new row count.
  for (auto& [attr, d] : out.distinct) {
    d = std::min(d, std::max(out.row_count, 1.0));
    d = std::max(d, 1.0);
  }
  return out;
}

}  // namespace auxview
