#ifndef AUXVIEW_COST_QUERY_COST_H_
#define AUXVIEW_COST_QUERY_COST_H_

#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "cost/io_cost_model.h"
#include "cost/statistics_propagation.h"
#include "memo/fd_analysis.h"
#include "memo/memo.h"

namespace auxview {

/// Options for query costing.
struct QueryCostOptions {
  /// Materialized views are assumed to carry a hash index on the attributes
  /// they are probed by (the paper's example assumes "a single index on
  /// DName" per materialization). When false, probes on materialized views
  /// scan them.
  bool materialized_views_indexed = true;
};

/// Costs the queries that delta propagation poses on equivalence nodes
/// (Section 3.4, "Cost of Computing Updates"): a lookup of all tuples of a
/// group matching each of `probes` values of some attributes.
///
/// A materialized group (or base relation) answers by index lookup; an
/// unmaterialized group answers by the cheapest plan over its operation
/// nodes, pushing the lookup into the inputs — this is the "answering
/// queries using the materialized views" sub-problem (Chaudhuri et al.),
/// solved over the memo. The recursion is monotonic: a plan's cost is at
/// least the cost of any of its sub-plans.
class QueryCoster {
 public:
  QueryCoster(const Memo* memo, const Catalog* catalog, StatsAnalysis* stats,
              FdAnalysis* fds, IoCostModel model, QueryCostOptions options = {})
      : memo_(memo),
        catalog_(catalog),
        stats_(stats),
        fds_(fds),
        model_(model),
        options_(options) {}

  /// Cost of fetching, for each of `probes` probe values over `attrs`, all
  /// matching tuples of group `g`, when the groups in `marked` are
  /// materialized. Empty `attrs` means fetching the whole relation.
  double LookupCost(GroupId g, const std::vector<std::string>& attrs,
                    double probes, const std::set<GroupId>& marked) const;

  /// Cost of computing the whole relation of group `g` under `marked`.
  double FullCost(GroupId g, const std::set<GroupId>& marked) const;

  /// Expected tuples of `g` matching one value of `attrs`.
  double MatchingRows(GroupId g, const std::vector<std::string>& attrs) const;

  /// Cost of answering the lookup through one specific operation node (used
  /// by the runtime engine to follow the same plan the estimate chose).
  double PlanLookupCost(const MemoExpr& e,
                        const std::vector<std::string>& attrs, double probes,
                        const std::set<GroupId>& marked) const;

  const IoCostModel& model() const { return model_; }

 private:
  double LeafLookupCost(const MemoGroup& grp,
                        const std::vector<std::string>& attrs,
                        double probes) const;

  const Memo* memo_;
  const Catalog* catalog_;
  StatsAnalysis* stats_;
  FdAnalysis* fds_;
  IoCostModel model_;
  QueryCostOptions options_;
};

}  // namespace auxview

#endif  // AUXVIEW_COST_QUERY_COST_H_
