#ifndef AUXVIEW_COST_STATISTICS_PROPAGATION_H_
#define AUXVIEW_COST_STATISTICS_PROPAGATION_H_

#include <map>
#include <string>
#include <vector>

#include "algebra/scalar.h"
#include "catalog/catalog.h"
#include "catalog/statistics.h"
#include "memo/memo.h"

namespace auxview {

/// Derives cardinality statistics for every memo group from base-relation
/// statistics, with the textbook uniformity/independence assumptions.
/// Statistics are a property of the group (all member expressions are
/// equivalent), derived from its first live member.
class StatsAnalysis {
 public:
  StatsAnalysis(const Memo* memo, const Catalog* catalog)
      : memo_(memo), catalog_(catalog) {}

  /// Statistics of group `g` (cached).
  const RelationStats& StatsOf(GroupId g);

  /// Estimated distinct count of the attribute combination `attrs` in a
  /// relation with statistics `stats`: the max per-attribute distinct count,
  /// capped by the row count (a deliberate lower-bound estimator; exact for
  /// the key-determined combinations the paper's example uses).
  static double DistinctJoint(const RelationStats& stats,
                              const std::vector<std::string>& attrs);

  /// Expected rows of `stats` matching one value of `attrs`.
  static double RowsPerJointValue(const RelationStats& stats,
                                  const std::vector<std::string>& attrs);

  /// Predicate selectivity: equality on a column is 1/distinct, ranges are
  /// 1/3, conjunction multiplies, disjunction adds (capped), unknown is 1/3.
  static double Selectivity(const Scalar& pred, const RelationStats& input);

  void Clear() { cache_.clear(); }

 private:
  RelationStats Compute(GroupId g);

  const Memo* memo_;
  const Catalog* catalog_;
  std::map<GroupId, RelationStats> cache_;
};

}  // namespace auxview

#endif  // AUXVIEW_COST_STATISTICS_PROPAGATION_H_
