#ifndef AUXVIEW_COST_IO_COST_MODEL_H_
#define AUXVIEW_COST_IO_COST_MODEL_H_

#include "delta/transaction.h"

namespace auxview {

/// Unit costs for the paper's page-I/O model (Section 3.6): hash indexes
/// with no overflow pages, no clustering, one tuple per relation page.
/// Any monotonic cost model can be expressed by adjusting the weights.
struct IoCostParams {
  double index_page_read = 1;
  double index_page_write = 1;
  double tuple_page_read = 1;
  double tuple_page_write = 1;
};

/// Computes elementary I/O costs.
class IoCostModel {
 public:
  explicit IoCostModel(IoCostParams params = {}) : params_(params) {}

  const IoCostParams& params() const { return params_; }

  /// `probes` index probes each fetching `matching` tuples:
  /// probes * (one index page + matching relation pages).
  double IndexLookup(double probes, double matching) const {
    return probes * (params_.index_page_read +
                     matching * params_.tuple_page_read);
  }

  /// Sequential read of `rows` tuples (one page each).
  double Scan(double rows) const { return rows * params_.tuple_page_read; }

  /// Cost of applying a delta of `rows` tuples to a stored relation with
  /// `num_indexes` hash indexes (paper Section 3.6):
  ///  - modify: one index-page read per index (an index write only when the
  ///    indexed attributes change), one read + one write per tuple;
  ///  - insert: one index-page read + write per index, one write per tuple;
  ///  - delete: one index-page read + write per index, one read + one write
  ///    per tuple.
  double ApplyDelta(UpdateKind kind, double rows, int num_indexes = 1,
                    bool indexed_attrs_change = false) const;

 private:
  IoCostParams params_;
};

}  // namespace auxview

#endif  // AUXVIEW_COST_IO_COST_MODEL_H_
