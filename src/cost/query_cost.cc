#include "cost/query_cost.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace auxview {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

std::set<std::string> ToSet(const std::vector<std::string>& v) {
  return std::set<std::string>(v.begin(), v.end());
}

bool SubsetOf(const std::vector<std::string>& a,
              const std::set<std::string>& b) {
  return std::all_of(a.begin(), a.end(),
                     [&](const std::string& x) { return b.count(x) > 0; });
}

std::set<std::string> SchemaAttrs(const Schema& schema) {
  std::set<std::string> out;
  for (const Column& c : schema.columns()) out.insert(c.name);
  return out;
}

}  // namespace

double QueryCoster::MatchingRows(GroupId g,
                                 const std::vector<std::string>& attrs) const {
  const RelationStats& stats = stats_->StatsOf(g);
  if (attrs.empty()) return stats.row_count;
  return StatsAnalysis::RowsPerJointValue(stats, attrs);
}

double QueryCoster::LeafLookupCost(const MemoGroup& grp,
                                   const std::vector<std::string>& attrs,
                                   double probes) const {
  const TableDef* def = catalog_->FindTable(grp.table);
  AUXVIEW_CHECK(def != nullptr);
  const RelationStats& stats = def->stats;
  if (attrs.empty()) return model_.Scan(stats.row_count);
  const std::set<std::string> attr_set = ToSet(attrs);
  // Best index whose attributes are a subset of the probe attributes
  // (residual attributes are filtered after the fetch, for free).
  double best = kInfinity;
  auto consider = [&](const std::vector<std::string>& idx_attrs) {
    if (idx_attrs.empty()) return;
    for (const std::string& a : idx_attrs) {
      if (attr_set.count(a) == 0) return;
    }
    const double matching = StatsAnalysis::RowsPerJointValue(stats, idx_attrs);
    best = std::min(best, model_.IndexLookup(probes, matching));
  };
  consider(def->primary_key);
  for (const IndexDef& idx : def->indexes) consider(idx.attrs);
  // Fallback: one full scan answers every probe (build a hash table).
  best = std::min(best, model_.Scan(stats.row_count));
  return best;
}

double QueryCoster::LookupCost(GroupId g,
                               const std::vector<std::string>& attrs,
                               double probes,
                               const std::set<GroupId>& marked) const {
  if (probes <= 0) return 0;
  g = memo_->Find(g);
  const MemoGroup& grp = memo_->group(g);
  if (grp.is_leaf) return LeafLookupCost(grp, attrs, probes);
  if (marked.count(g) > 0) {
    const RelationStats& stats = stats_->StatsOf(g);
    if (attrs.empty()) return model_.Scan(stats.row_count);
    if (options_.materialized_views_indexed) {
      return model_.IndexLookup(probes, MatchingRows(g, attrs));
    }
    return model_.Scan(stats.row_count);
  }
  // Unmaterialized: cheapest plan over the group's operation nodes.
  double best = kInfinity;
  for (int eid : grp.exprs) {
    const MemoExpr& e = memo_->expr(eid);
    if (e.dead) continue;
    best = std::min(best, PlanLookupCost(e, attrs, probes, marked));
  }
  AUXVIEW_CHECK_MSG(best < kInfinity, "no plan answers a lookup");
  return best;
}

double QueryCoster::FullCost(GroupId g, const std::set<GroupId>& marked) const {
  return LookupCost(g, {}, 1, marked);
}

double QueryCoster::PlanLookupCost(const MemoExpr& e,
                                   const std::vector<std::string>& attrs,
                                   double probes,
                                   const std::set<GroupId>& marked) const {
  switch (e.kind()) {
    case OpKind::kScan:
      return kInfinity;  // scans never appear as non-leaf operation nodes
    case OpKind::kSelect:
    case OpKind::kDupElim:
      // Predicate filtering / dedup happen on the fly.
      return LookupCost(e.inputs[0], attrs, probes, marked);
    case OpKind::kProject: {
      // Push the probe through simple pass-through columns.
      std::set<std::string> passthrough;
      for (const ProjectItem& item : e.op->projections()) {
        if (item.expr->op() == ScalarOp::kColumn &&
            item.expr->column_name() == item.name) {
          passthrough.insert(item.name);
        }
      }
      if (!SubsetOf(attrs, passthrough)) {
        return FullCost(e.inputs[0], marked);
      }
      return LookupCost(e.inputs[0], attrs, probes, marked);
    }
    case OpKind::kJoin: {
      const GroupId left = memo_->Find(e.inputs[0]);
      const GroupId right = memo_->Find(e.inputs[1]);
      const std::vector<std::string>& s = e.op->join_attrs();
      double best = kInfinity;
      for (int side = 0; side < 2; ++side) {
        const GroupId x = side == 0 ? left : right;
        const GroupId y = side == 0 ? right : left;
        const std::set<std::string> attrs_x =
            SchemaAttrs(memo_->group(x).schema);
        if (!SubsetOf(attrs, attrs_x)) continue;
        // Fetch matching X tuples, then probe Y on the join attributes.
        const double fetched = MatchingRows(x, attrs);
        // Distinct join-attr values among the fetched tuples: one when the
        // probe attributes functionally determine them, else bounded by both
        // the fetched count and Y's distinct values.
        double y_probes;
        if (fds_->Fds(x).Determines(ToSet(attrs), ToSet(s))) {
          y_probes = probes;
        } else {
          const RelationStats& ys = stats_->StatsOf(y);
          y_probes =
              probes * std::min(std::max(fetched, 1.0),
                                StatsAnalysis::DistinctJoint(ys, s));
        }
        const double cost = LookupCost(x, attrs, probes, marked) +
                            LookupCost(y, s, y_probes, marked);
        best = std::min(best, cost);
      }
      // Fallback: materialize both sides and hash-join.
      best = std::min(best, FullCost(left, marked) + FullCost(right, marked));
      return best;
    }
    case OpKind::kAggregate: {
      const std::set<std::string> gb(e.op->group_by().begin(),
                                     e.op->group_by().end());
      if (!attrs.empty() && SubsetOf(attrs, gb)) {
        // Fetch the groups' rows and aggregate on the fly.
        return LookupCost(e.inputs[0], attrs, probes, marked);
      }
      return FullCost(e.inputs[0], marked);
    }
  }
  return kInfinity;
}

}  // namespace auxview
