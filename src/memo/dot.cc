#include "memo/dot.h"

namespace auxview {

namespace {

std::string EscapeDot(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string MemoToDot(const Memo& memo, const std::set<GroupId>& marked) {
  std::string out = "digraph memo {\n  rankdir=BT;\n";
  for (GroupId g : memo.LiveGroups()) {
    const MemoGroup& grp = memo.group(g);
    out += "  N" + std::to_string(g) + " [shape=box, label=\"N" +
           std::to_string(g) +
           (grp.is_leaf ? ": " + EscapeDot(grp.table) : "") + "\"";
    if (marked.count(g) > 0) out += ", style=filled, fillcolor=lightblue";
    if (g == memo.root()) out += ", penwidth=2";
    out += "];\n";
  }
  for (int eid : memo.LiveExprs()) {
    const MemoExpr& e = memo.expr(eid);
    if (e.kind() == OpKind::kScan) continue;
    out += "  E" + std::to_string(eid) + " [shape=ellipse, label=\"" +
           EscapeDot(e.op->LocalToString()) + "\"];\n";
    out += "  E" + std::to_string(eid) + " -> N" +
           std::to_string(memo.Find(e.group)) + ";\n";
    for (GroupId in : e.inputs) {
      out += "  N" + std::to_string(memo.Find(in)) + " -> E" +
             std::to_string(eid) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace auxview
