#ifndef AUXVIEW_MEMO_EXPAND_H_
#define AUXVIEW_MEMO_EXPAND_H_

#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "memo/memo.h"
#include "memo/rules.h"

namespace auxview {

/// Limits for rule expansion.
struct ExpandOptions {
  int max_groups = 4096;
  int max_exprs = 16384;
  int max_passes = 32;
};

/// Result of an expansion run.
struct ExpandStats {
  int passes = 0;
  int exprs_added = 0;
  bool hit_limit = false;
};

/// Applies `rules` to every operation node until fixpoint (or limits),
/// Volcano-style: each (rule, operation node) pair fires at most once, and
/// new operation nodes are scheduled as they appear.
StatusOr<ExpandStats> ExpandMemo(Memo* memo, const Catalog& catalog,
                                 const std::vector<std::unique_ptr<Rule>>& rules,
                                 const ExpandOptions& options = {});

/// Convenience: builds a memo from `tree` and expands it with the default
/// rule set.
StatusOr<Memo> BuildExpandedMemo(const Expr::Ptr& tree, const Catalog& catalog,
                                 const ExpandOptions& options = {});

}  // namespace auxview

#endif  // AUXVIEW_MEMO_EXPAND_H_
