#ifndef AUXVIEW_MEMO_ARTICULATION_H_
#define AUXVIEW_MEMO_ARTICULATION_H_

#include <set>
#include <vector>

#include "memo/memo.h"

namespace auxview {

/// Articulation equivalence nodes of the expression DAG viewed as an
/// undirected graph over equivalence nodes and operation nodes (paper
/// Definition 4.1). These are the nodes where the Shielding Principle
/// (Theorem 4.1) licenses local optimization.
std::set<GroupId> FindArticulationGroups(const Memo& memo);

/// The groups at-or-below `g` (g itself, plus every group reachable through
/// operation-node inputs) — the sub-DAG D_N of Section 4.2.
std::set<GroupId> DescendantGroups(const Memo& memo, GroupId g);

}  // namespace auxview

#endif  // AUXVIEW_MEMO_ARTICULATION_H_
