#ifndef AUXVIEW_MEMO_MEMO_H_
#define AUXVIEW_MEMO_MEMO_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "common/status.h"

namespace auxview {

/// Identifier of an equivalence node (group) in the expression DAG.
using GroupId = int;

/// An operation node: one operator applied to input equivalence nodes.
///
/// `op` carries the operator's parameters (predicate, join attributes,
/// group-by list, ...); its original children are ignored — `inputs` are the
/// authoritative child equivalence nodes.
struct MemoExpr {
  int id = -1;
  GroupId group = -1;
  Expr::Ptr op;
  std::vector<GroupId> inputs;
  /// The operator's natural output schema given the input groups' canonical
  /// schemas. May be a superset-permutation of the group's canonical schema
  /// (e.g. the Yan-Larson join tree carries extra key-determined columns);
  /// results are aligned to the canonical schema at the group boundary.
  Schema natural_schema;
  bool dead = false;  // superseded by a group merge

  OpKind kind() const { return op->kind(); }
};

/// An equivalence node: a set of operation nodes computing the same relation
/// (up to alignment to the canonical schema).
struct MemoGroup {
  GroupId id = -1;
  Schema schema;               // canonical schema
  std::vector<int> exprs;      // member operation-node ids
  bool is_leaf = false;        // base relation
  std::string table;           // leaf only
  bool dead = false;           // merged into another group
};

/// The expression DAG (Volcano-style memo): a bipartite DAG of equivalence
/// nodes and operation nodes (paper Section 2.1). Leaf equivalence nodes are
/// base relations. Deduplicates operation nodes by signature and merges
/// groups proven equal.
class Memo {
 public:
  /// Inserts a whole expression tree, returning its (possibly pre-existing)
  /// equivalence node. The first insertion defines the root.
  StatusOr<GroupId> AddTree(const Expr::Ptr& tree);

  /// Adds operator `op` (parameters only) over `inputs` to group `group`.
  /// Returns the operation-node id, or the existing node's id when the
  /// signature is already present. May merge groups.
  StatusOr<int> AddExpr(GroupId group, const Expr::Ptr& op,
                        std::vector<GroupId> inputs);

  /// Adds operator `op` over `inputs`, creating a new group (or returning
  /// the group that already contains this operation node).
  StatusOr<GroupId> AddExprNewGroup(const Expr::Ptr& op,
                                    std::vector<GroupId> inputs);

  /// Canonical id of a group (follows merge links).
  GroupId Find(GroupId g) const;

  const MemoGroup& group(GroupId g) const { return groups_[Find(g)]; }
  const MemoExpr& expr(int id) const { return exprs_[id]; }
  int num_groups() const { return static_cast<int>(groups_.size()); }
  int num_exprs() const { return static_cast<int>(exprs_.size()); }

  /// Live (non-merged) groups, in id order.
  std::vector<GroupId> LiveGroups() const;
  /// Live operation nodes, in id order.
  std::vector<int> LiveExprs() const;

  /// Live groups that are not base relations (the candidate view space E_V,
  /// Definition 3.1).
  std::vector<GroupId> NonLeafGroups() const;

  GroupId root() const { return Find(root_); }
  void set_root(GroupId g) { root_ = g; }

  /// Groups whose operation nodes mention group `g` as an input.
  std::vector<int> ParentExprsOf(GroupId g) const;

  /// True iff `target` is reachable from `from` through operation-node
  /// inputs (i.e. target is a descendant of from, or equal).
  bool ReachableFrom(GroupId from, GroupId target) const;

  /// Internal invariant: the group/input graph is acyclic (rule and merge
  /// machinery must preserve this; exposed for tests).
  bool VerifyAcyclic() const;

  /// Builds a concrete expression tree for `g` using `choice` (group ->
  /// operation-node id). Groups absent from `choice` use their first member.
  /// Inserts a projection wherever an operation node's natural schema differs
  /// from the group's canonical schema.
  StatusOr<Expr::Ptr> ExtractTree(GroupId g,
                                  const std::map<GroupId, int>& choice) const;

  /// ExtractTree with every group using its first (original) operator.
  StatusOr<Expr::Ptr> ExtractOriginalTree(GroupId g) const {
    return ExtractTree(g, {});
  }

  /// Wraps `expr` in a projection onto `target` when schemas differ
  /// (column-name based; `expr`'s schema must contain all target columns).
  static StatusOr<Expr::Ptr> AlignExpr(Expr::Ptr expr, const Schema& target);

  /// Multi-line human-readable dump (N<i> equivalence nodes with their
  /// operation-node children, Figure 2 style).
  std::string ToString() const;

 private:
  StatusOr<GroupId> AddTreeImpl(const Expr::Ptr& tree);
  std::string SignatureOf(const Expr::Ptr& op,
                          const std::vector<GroupId>& inputs) const;
  /// Computes the natural schema of op over the inputs' canonical schemas.
  StatusOr<Schema> NaturalSchema(const Expr::Ptr& op,
                                 const std::vector<GroupId>& inputs) const;
  /// True iff `schema` contains every column of `canonical` (same types).
  static bool Covers(const Schema& schema, const Schema& canonical);
  Status MergeGroups(GroupId keep, GroupId drop);
  /// Rebuilds the dedup map and re-canonicalizes expr inputs after merges;
  /// may trigger cascading merges.
  Status Recanonicalize();

  std::vector<MemoGroup> groups_;
  std::vector<MemoExpr> exprs_;
  std::vector<GroupId> merged_into_;       // parallel to groups_
  std::map<std::string, int> dedup_;       // signature -> expr id
  std::map<std::string, GroupId> leaves_;  // table name -> leaf group
  GroupId root_ = -1;
};

}  // namespace auxview

#endif  // AUXVIEW_MEMO_MEMO_H_
