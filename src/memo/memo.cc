#include "memo/memo.h"

#include <algorithm>

#include "common/check.h"

namespace auxview {

GroupId Memo::Find(GroupId g) const {
  AUXVIEW_CHECK(g >= 0 && g < static_cast<int>(groups_.size()));
  while (merged_into_[g] != g) g = merged_into_[g];
  return g;
}

std::string Memo::SignatureOf(const Expr::Ptr& op,
                              const std::vector<GroupId>& inputs) const {
  std::string sig = op->LocalSignature();
  sig += "(";
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (i > 0) sig += ",";
    sig += std::to_string(Find(inputs[i]));
  }
  sig += ")";
  return sig;
}

StatusOr<Schema> Memo::NaturalSchema(const Expr::Ptr& op,
                                     const std::vector<GroupId>& inputs) const {
  if (op->kind() == OpKind::kScan) return op->output_schema();
  std::vector<Expr::Ptr> placeholders;
  placeholders.reserve(inputs.size());
  for (GroupId in : inputs) {
    const MemoGroup& g = groups_[Find(in)];
    placeholders.push_back(
        Expr::Scan("@g" + std::to_string(g.id), g.schema));
  }
  AUXVIEW_ASSIGN_OR_RETURN(Expr::Ptr rebuilt, op->WithChildren(placeholders));
  return rebuilt->output_schema();
}

bool Memo::Covers(const Schema& schema, const Schema& canonical) {
  for (const Column& c : canonical.columns()) {
    const int i = schema.IndexOf(c.name);
    if (i < 0 || schema.column(i).type != c.type) return false;
  }
  return true;
}

StatusOr<GroupId> Memo::AddTree(const Expr::Ptr& tree) {
  AUXVIEW_ASSIGN_OR_RETURN(GroupId g, AddTreeImpl(tree));
  if (root_ < 0) root_ = g;
  return g;
}

StatusOr<GroupId> Memo::AddTreeImpl(const Expr::Ptr& tree) {
  if (tree == nullptr) return Status::InvalidArgument("null tree");
  if (tree->kind() == OpKind::kScan) {
    auto it = leaves_.find(tree->table());
    if (it != leaves_.end()) {
      const MemoGroup& g = groups_[Find(it->second)];
      if (!(g.schema == tree->output_schema())) {
        return Status::FailedPrecondition("conflicting schema for relation " +
                                          tree->table());
      }
      return g.id;
    }
    MemoGroup g;
    g.id = static_cast<GroupId>(groups_.size());
    g.schema = tree->output_schema();
    g.is_leaf = true;
    g.table = tree->table();
    groups_.push_back(g);
    merged_into_.push_back(g.id);
    leaves_[tree->table()] = g.id;
    return g.id;
  }
  std::vector<GroupId> inputs;
  for (const Expr::Ptr& child : tree->children()) {
    AUXVIEW_ASSIGN_OR_RETURN(GroupId in, AddTreeImpl(child));
    inputs.push_back(in);
  }
  return AddExprNewGroup(tree, inputs);
}

StatusOr<GroupId> Memo::AddExprNewGroup(const Expr::Ptr& op,
                                        std::vector<GroupId> inputs) {
  for (GroupId& in : inputs) in = Find(in);
  const std::string sig = SignatureOf(op, inputs);
  auto it = dedup_.find(sig);
  if (it != dedup_.end()) return Find(exprs_[it->second].group);
  AUXVIEW_ASSIGN_OR_RETURN(Schema natural, NaturalSchema(op, inputs));
  MemoGroup g;
  g.id = static_cast<GroupId>(groups_.size());
  g.schema = natural;
  groups_.push_back(g);
  merged_into_.push_back(g.id);
  MemoExpr e;
  e.id = static_cast<int>(exprs_.size());
  e.group = g.id;
  e.op = op;
  e.inputs = std::move(inputs);
  e.natural_schema = std::move(natural);
  exprs_.push_back(e);
  groups_[g.id].exprs.push_back(e.id);
  dedup_[sig] = e.id;
  return g.id;
}

StatusOr<int> Memo::AddExpr(GroupId group, const Expr::Ptr& op,
                            std::vector<GroupId> inputs) {
  group = Find(group);
  for (GroupId& in : inputs) in = Find(in);
  // Reject edges that would close a cycle: an input that can already reach
  // `group` (directly or transitively) would make the group its own
  // ancestor. Rules hit this when a rewrite is a semantic no-op (e.g.
  // re-aggregating an input that is already at that granularity).
  for (GroupId in : inputs) {
    if (ReachableFrom(in, group)) {
      return Status::InvalidArgument(
          "operation node input would create a cycle");
    }
  }
  const std::string sig = SignatureOf(op, inputs);
  auto it = dedup_.find(sig);
  if (it != dedup_.end()) {
    const int existing = it->second;
    const GroupId other = Find(exprs_[existing].group);
    if (other != group) {
      // The same operation node is claimed by two groups: they compute the
      // same relation. Merge when canonical schemas agree and the merge
      // would not fold an ancestor into its own descendant (a semantic
      // no-op, e.g. re-aggregating an already-grouped input, would create a
      // representational cycle); otherwise keep them separate (sound,
      // merely less sharing).
      if (groups_[other].schema == groups_[group].schema &&
          !ReachableFrom(group, other) && !ReachableFrom(other, group)) {
        AUXVIEW_RETURN_IF_ERROR(MergeGroups(group, other));
      }
    }
    return existing;
  }
  AUXVIEW_ASSIGN_OR_RETURN(Schema natural, NaturalSchema(op, inputs));
  if (!Covers(natural, groups_[group].schema)) {
    return Status::FailedPrecondition(
        "operation schema {" + natural.ToString() +
        "} does not cover group schema {" + groups_[group].schema.ToString() +
        "}");
  }
  MemoExpr e;
  e.id = static_cast<int>(exprs_.size());
  e.group = group;
  e.op = op;
  e.inputs = std::move(inputs);
  e.natural_schema = std::move(natural);
  exprs_.push_back(e);
  groups_[group].exprs.push_back(e.id);
  dedup_[sig] = e.id;
  return e.id;
}

Status Memo::MergeGroups(GroupId keep, GroupId drop) {
  keep = Find(keep);
  drop = Find(drop);
  if (keep == drop) return Status::Ok();
  if (groups_[drop].is_leaf) std::swap(keep, drop);  // never absorb a leaf
  MemoGroup& target = groups_[keep];
  MemoGroup& source = groups_[drop];
  for (int eid : source.exprs) {
    MemoExpr& e = exprs_[eid];
    if (!Covers(e.natural_schema, target.schema)) {
      return Status::Internal(
          "group merge with incompatible member schema: " +
          e.natural_schema.ToString() + " vs " + target.schema.ToString());
    }
    e.group = target.id;
    target.exprs.push_back(eid);
  }
  source.exprs.clear();
  source.dead = true;
  merged_into_[source.id] = target.id;
  if (Find(root_) == source.id) root_ = target.id;
  return Recanonicalize();
}

Status Memo::Recanonicalize() {
  // Rebuild the dedup map with canonical group ids; duplicate signatures in
  // the same group kill the newer expr, across groups trigger merges.
  bool changed = true;
  while (changed) {
    changed = false;
    dedup_.clear();
    for (MemoExpr& e : exprs_) {
      if (e.dead) continue;
      e.group = Find(e.group);
      for (GroupId& in : e.inputs) in = Find(in);
      const std::string sig = SignatureOf(e.op, e.inputs);
      auto [it, inserted] = dedup_.emplace(sig, e.id);
      if (inserted) continue;
      MemoExpr& first = exprs_[it->second];
      if (Find(first.group) == Find(e.group)) {
        e.dead = true;
        auto& vec = groups_[Find(e.group)].exprs;
        vec.erase(std::remove(vec.begin(), vec.end(), e.id), vec.end());
      } else if (groups_[Find(first.group)].schema ==
                     groups_[Find(e.group)].schema &&
                 !ReachableFrom(Find(first.group), Find(e.group)) &&
                 !ReachableFrom(Find(e.group), Find(first.group))) {
        // Cross-group duplicate: merge (without recursing into
        // Recanonicalize — we are already inside the fixpoint loop).
        const GroupId keep = Find(first.group);
        const GroupId drop = Find(e.group);
        MemoGroup& target = groups_[keep];
        MemoGroup& source = groups_[drop];
        for (int eid : source.exprs) {
          exprs_[eid].group = target.id;
          target.exprs.push_back(eid);
        }
        source.exprs.clear();
        source.dead = true;
        merged_into_[drop] = keep;
        if (Find(root_) == drop) root_ = keep;
        changed = true;
        break;  // restart the scan with fresh canonical ids
      }
      // Different canonical schemas: leave both (documented limitation).
    }
  }
  return Status::Ok();
}

std::vector<GroupId> Memo::LiveGroups() const {
  std::vector<GroupId> out;
  for (const MemoGroup& g : groups_) {
    if (!g.dead) out.push_back(g.id);
  }
  return out;
}

std::vector<int> Memo::LiveExprs() const {
  std::vector<int> out;
  for (const MemoExpr& e : exprs_) {
    if (!e.dead && !groups_[Find(e.group)].dead) out.push_back(e.id);
  }
  return out;
}

std::vector<GroupId> Memo::NonLeafGroups() const {
  std::vector<GroupId> out;
  for (const MemoGroup& g : groups_) {
    if (!g.dead && !g.is_leaf) out.push_back(g.id);
  }
  return out;
}

bool Memo::ReachableFrom(GroupId from, GroupId target) const {
  from = Find(from);
  target = Find(target);
  std::vector<GroupId> stack = {from};
  std::set<GroupId> seen;
  while (!stack.empty()) {
    const GroupId g = stack.back();
    stack.pop_back();
    if (g == target) return true;
    if (!seen.insert(g).second) continue;
    for (int eid : groups_[g].exprs) {
      const MemoExpr& e = exprs_[eid];
      if (e.dead) continue;
      for (GroupId in : e.inputs) stack.push_back(Find(in));
    }
  }
  return false;
}

bool Memo::VerifyAcyclic() const {
  // Iterative three-color DFS over the group graph.
  std::map<GroupId, int> state;  // 0 new, 1 on stack, 2 done
  for (GroupId root : LiveGroups()) {
    if (state[root] != 0) continue;
    std::vector<std::pair<GroupId, size_t>> stack = {{root, 0}};
    std::vector<GroupId> children;
    while (!stack.empty()) {
      auto& [g, idx] = stack.back();
      if (idx == 0) state[g] = 1;
      // Gather this group's child groups lazily.
      children.clear();
      for (int eid : groups_[g].exprs) {
        const MemoExpr& e = exprs_[eid];
        if (e.dead) continue;
        for (GroupId in : e.inputs) children.push_back(Find(in));
      }
      if (idx >= children.size()) {
        state[g] = 2;
        stack.pop_back();
        continue;
      }
      const GroupId next = children[idx++];
      if (state[next] == 1) return false;
      if (state[next] == 0) stack.emplace_back(next, 0);
    }
  }
  return true;
}

std::vector<int> Memo::ParentExprsOf(GroupId g) const {
  g = Find(g);
  std::vector<int> out;
  for (const MemoExpr& e : exprs_) {
    if (e.dead || groups_[Find(e.group)].dead) continue;
    for (GroupId in : e.inputs) {
      if (Find(in) == g) {
        out.push_back(e.id);
        break;
      }
    }
  }
  return out;
}

StatusOr<Expr::Ptr> Memo::AlignExpr(Expr::Ptr expr, const Schema& target) {
  if (expr->output_schema() == target) return expr;
  std::vector<ProjectItem> items;
  for (const Column& c : target.columns()) {
    if (!expr->output_schema().Contains(c.name)) {
      return Status::Internal("cannot align: missing column " + c.name);
    }
    items.push_back(ProjectItem{Scalar::Column(c.name), c.name});
  }
  return Expr::Project(std::move(expr), std::move(items));
}

StatusOr<Expr::Ptr> Memo::ExtractTree(
    GroupId g, const std::map<GroupId, int>& choice) const {
  g = Find(g);
  const MemoGroup& grp = groups_[g];
  if (grp.is_leaf) return Expr::Scan(grp.table, grp.schema);
  int eid = -1;
  auto it = choice.find(g);
  if (it != choice.end()) {
    eid = it->second;
  } else {
    for (int candidate : grp.exprs) {
      if (!exprs_[candidate].dead) {
        eid = candidate;
        break;
      }
    }
  }
  if (eid < 0) return Status::Internal("group has no live operation node");
  const MemoExpr& e = exprs_[eid];
  if (Find(e.group) != g) {
    return Status::InvalidArgument("choice maps group to foreign expr");
  }
  std::vector<Expr::Ptr> children;
  for (GroupId in : e.inputs) {
    AUXVIEW_ASSIGN_OR_RETURN(Expr::Ptr child, ExtractTree(in, choice));
    children.push_back(std::move(child));
  }
  AUXVIEW_ASSIGN_OR_RETURN(Expr::Ptr tree, e.op->WithChildren(children));
  return AlignExpr(std::move(tree), grp.schema);
}

std::string Memo::ToString() const {
  std::string out;
  for (const MemoGroup& g : groups_) {
    if (g.dead) continue;
    out += "N" + std::to_string(g.id);
    if (g.id == Find(root_)) out += " (root)";
    if (g.is_leaf) {
      out += ": relation " + g.table;
    } else {
      out += ": {" + g.schema.ToString() + "}";
    }
    out += "\n";
    for (int eid : g.exprs) {
      const MemoExpr& e = exprs_[eid];
      if (e.dead) continue;
      out += "  E" + std::to_string(e.id) + ": " + e.op->LocalToString();
      if (!e.inputs.empty()) {
        out += " [";
        for (size_t i = 0; i < e.inputs.size(); ++i) {
          if (i > 0) out += ", ";
          out += "N" + std::to_string(Find(e.inputs[i]));
        }
        out += "]";
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace auxview
