#include "memo/expand.h"

#include <set>
#include <utility>

namespace auxview {

StatusOr<ExpandStats> ExpandMemo(
    Memo* memo, const Catalog& catalog,
    const std::vector<std::unique_ptr<Rule>>& rules,
    const ExpandOptions& options) {
  FdAnalysis fds(memo, &catalog);
  RuleContext ctx;
  ctx.memo = memo;
  ctx.catalog = &catalog;
  ctx.fds = &fds;

  ExpandStats stats;
  std::set<std::pair<int, int>> fired;  // (rule index, expr id)
  bool changed = true;
  while (changed && stats.passes < options.max_passes) {
    changed = false;
    ++stats.passes;
    // Iterate by id; new exprs appended during this pass get picked up on the
    // next pass (and ids never shrink).
    const int snapshot = memo->num_exprs();
    for (int eid = 0; eid < snapshot; ++eid) {
      if (memo->expr(eid).dead) continue;
      for (size_t r = 0; r < rules.size(); ++r) {
        if (memo->num_groups() > options.max_groups ||
            memo->num_exprs() > options.max_exprs) {
          stats.hit_limit = true;
          return stats;
        }
        if (!fired.insert({static_cast<int>(r), eid}).second) continue;
        AUXVIEW_ASSIGN_OR_RETURN(int added, rules[r]->Apply(ctx, eid));
        if (added > 0) {
          changed = true;
          stats.exprs_added += added;
          fds.Clear();
        }
      }
    }
    if (memo->num_exprs() > snapshot) changed = true;
  }
  return stats;
}

StatusOr<Memo> BuildExpandedMemo(const Expr::Ptr& tree, const Catalog& catalog,
                                 const ExpandOptions& options) {
  Memo memo;
  AUXVIEW_RETURN_IF_ERROR(memo.AddTree(tree).status());
  const std::vector<std::unique_ptr<Rule>> rules = DefaultRuleSet();
  AUXVIEW_RETURN_IF_ERROR(
      ExpandMemo(&memo, catalog, rules, options).status());
  return memo;
}

}  // namespace auxview
