#ifndef AUXVIEW_MEMO_FD_ANALYSIS_H_
#define AUXVIEW_MEMO_FD_ANALYSIS_H_

#include <map>

#include "catalog/catalog.h"
#include "catalog/fd.h"
#include "memo/memo.h"

namespace auxview {

/// Derives functional dependencies for memo groups from base-relation keys.
///
/// Propagation: Scan uses the catalog key; Select/DupElim keep the child's
/// FDs; Project restricts them to surviving columns; Join unions both inputs'
/// FDs (join attributes are merged by name, so they compose); Aggregate keeps
/// the child's FDs restricted to the group-by columns and adds
/// group-by -> all-outputs.
class FdAnalysis {
 public:
  FdAnalysis(const Memo* memo, const Catalog* catalog)
      : memo_(memo), catalog_(catalog) {}

  /// FDs of group `g` (cached; derived from the group's first live operation
  /// node — all members are equivalent).
  const FdSet& Fds(GroupId g);

  /// True iff `attrs` functionally determine every column of group `g`.
  bool IsKeyOf(const std::set<std::string>& attrs, GroupId g);

  /// Invalidate the cache (after memo mutation).
  void Clear() { cache_.clear(); }

 private:
  FdSet Compute(GroupId g);

  const Memo* memo_;
  const Catalog* catalog_;
  std::map<GroupId, FdSet> cache_;
};

}  // namespace auxview

#endif  // AUXVIEW_MEMO_FD_ANALYSIS_H_
