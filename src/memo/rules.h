#ifndef AUXVIEW_MEMO_RULES_H_
#define AUXVIEW_MEMO_RULES_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "memo/fd_analysis.h"
#include "memo/memo.h"

namespace auxview {

/// Shared state handed to rules during expansion.
struct RuleContext {
  Memo* memo = nullptr;
  const Catalog* catalog = nullptr;
  FdAnalysis* fds = nullptr;
};

/// A Volcano-style transformation rule. Rules inspect one operation node and
/// add equivalent alternatives to the memo (possibly creating new groups for
/// new subexpressions). Rules must be sound; inapplicable patterns simply add
/// nothing.
class Rule {
 public:
  virtual ~Rule() = default;
  virtual const char* name() const = 0;
  /// Returns the number of operation nodes added.
  virtual StatusOr<int> Apply(RuleContext& ctx, int expr_id) const = 0;
};

/// Join(A, B) => Join(B, A).
class JoinCommuteRule : public Rule {
 public:
  const char* name() const override { return "JoinCommute"; }
  StatusOr<int> Apply(RuleContext& ctx, int expr_id) const override;
};

/// Join(Join(A, B), C) => Join(A, Join(B, C)) (with commute this explores
/// all bushy join orders of a connected join graph).
class JoinAssocRule : public Rule {
 public:
  const char* name() const override { return "JoinAssoc"; }
  StatusOr<int> Apply(RuleContext& ctx, int expr_id) const override;
};

/// Select(p, Join(A, B)) => Join(Select(p, A), B) / Join(A, Select(p, B))
/// when p references only one side, and
/// Select(p, Aggregate(X)) => Aggregate(Select(p, X)) when p references only
/// group-by columns.
class SelectPushdownRule : public Rule {
 public:
  const char* name() const override { return "SelectPushdown"; }
  StatusOr<int> Apply(RuleContext& ctx, int expr_id) const override;
};

/// Select(p, Select(q, X)) => Select(p AND q, X).
class SelectMergeRule : public Rule {
 public:
  const char* name() const override { return "SelectMerge"; }
  StatusOr<int> Apply(RuleContext& ctx, int expr_id) const override;
};

/// Eager aggregation (Yan-Larson): Aggregate[G,aggs](Join(A, B, S)) =>
/// Join(Aggregate[(G inter attrs(A)) union S, aggs](A), B, S), legal when the
/// aggregate arguments come from A, S is a subset of G, and S is a key of B
/// (so the join neither duplicates nor splits groups). This is the rule that
/// produces the paper's Figure 1 left tree from the right tree.
class EagerAggregationRule : public Rule {
 public:
  const char* name() const override { return "EagerAggregation"; }
  StatusOr<int> Apply(RuleContext& ctx, int expr_id) const override;
};

/// Lazy aggregation (the reverse direction):
/// Join(Aggregate[G',aggs](A), B, S) => Aggregate[G' + (attrs(B)-S), aggs](
/// Join(A, B, S)) under the same key condition.
class LazyAggregationRule : public Rule {
 public:
  const char* name() const override { return "LazyAggregation"; }
  StatusOr<int> Apply(RuleContext& ctx, int expr_id) const override;
};

/// General eager aggregation with re-aggregation (Yan-Larson):
///   Aggregate[G, aggs](Join(A, B, S)) =>
///   Aggregate[G, re-aggs](Join(Aggregate[(G inter attrs(A)) + S, aggs](A),
///                               B, S))
/// where SUM re-aggregates partial SUMs, COUNT re-aggregates as SUM of
/// partial counts, MIN/MAX re-aggregate themselves. Unlike
/// EagerAggregationRule this needs neither S inside G nor a key on B: rows
/// of a partial group share their S-value, so join duplication multiplies
/// whole partials, which the outer aggregate absorbs. AVG does not
/// decompose and blocks the rule.
class GeneralEagerAggregationRule : public Rule {
 public:
  const char* name() const override { return "GeneralEagerAggregation"; }
  StatusOr<int> Apply(RuleContext& ctx, int expr_id) const override;
};

/// The default rule set: join commute/assoc, select pushdown/merge, and the
/// exact aggregation swaps. (The paper's results are independent of the rule
/// set; "a larger set of rules would obviously allow us to explore a larger
/// search space".)
std::vector<std::unique_ptr<Rule>> DefaultRuleSet();

/// Default plus GeneralEagerAggregationRule — a much larger search space
/// (partial rollups at every join position), suited to warehouse-style
/// star/snowflake views. Pair with ExpandOptions caps on big schemas.
std::vector<std::unique_ptr<Rule>> ExtendedRuleSet();

/// Only the aggregation swap rules (reproduces the paper's Figure 2 DAG
/// exactly, with no commuted join variants).
std::vector<std::unique_ptr<Rule>> AggregationOnlyRuleSet();

}  // namespace auxview

#endif  // AUXVIEW_MEMO_RULES_H_
