#include "memo/articulation.h"

#include <algorithm>
#include <functional>
#include <map>

namespace auxview {

std::set<GroupId> FindArticulationGroups(const Memo& memo) {
  // Node numbering: live groups then live operation nodes.
  std::vector<GroupId> groups = memo.LiveGroups();
  std::vector<int> exprs = memo.LiveExprs();
  std::map<GroupId, int> group_node;
  for (size_t i = 0; i < groups.size(); ++i) {
    group_node[groups[i]] = static_cast<int>(i);
  }
  const int num_nodes = static_cast<int>(groups.size() + exprs.size());
  std::vector<std::vector<int>> adj(num_nodes);
  for (size_t i = 0; i < exprs.size(); ++i) {
    const MemoExpr& e = memo.expr(exprs[i]);
    const int enode = static_cast<int>(groups.size() + i);
    const int gnode = group_node.at(memo.Find(e.group));
    adj[enode].push_back(gnode);
    adj[gnode].push_back(enode);
    for (GroupId in : e.inputs) {
      const int cnode = group_node.at(memo.Find(in));
      adj[enode].push_back(cnode);
      adj[cnode].push_back(enode);
    }
  }

  // Tarjan's articulation-point algorithm.
  std::vector<int> disc(num_nodes, -1);
  std::vector<int> low(num_nodes, 0);
  std::vector<bool> articulation(num_nodes, false);
  int timer = 0;
  std::function<void(int, int)> dfs = [&](int u, int parent) {
    disc[u] = low[u] = timer++;
    int children = 0;
    for (int v : adj[u]) {
      if (v == parent) continue;
      if (disc[v] >= 0) {
        low[u] = std::min(low[u], disc[v]);
        continue;
      }
      ++children;
      dfs(v, u);
      low[u] = std::min(low[u], low[v]);
      if (parent != -1 && low[v] >= disc[u]) articulation[u] = true;
    }
    if (parent == -1 && children > 1) articulation[u] = true;
  };
  for (int u = 0; u < num_nodes; ++u) {
    if (disc[u] < 0) dfs(u, -1);
  }

  std::set<GroupId> out;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (articulation[i]) out.insert(groups[i]);
  }
  return out;
}

std::set<GroupId> DescendantGroups(const Memo& memo, GroupId g) {
  std::set<GroupId> out;
  std::vector<GroupId> stack = {memo.Find(g)};
  while (!stack.empty()) {
    const GroupId cur = stack.back();
    stack.pop_back();
    if (!out.insert(cur).second) continue;
    for (int eid : memo.group(cur).exprs) {
      const MemoExpr& e = memo.expr(eid);
      if (e.dead) continue;
      for (GroupId in : e.inputs) stack.push_back(memo.Find(in));
    }
  }
  return out;
}

}  // namespace auxview
