#include "memo/fd_analysis.h"

#include "common/check.h"

namespace auxview {

const FdSet& FdAnalysis::Fds(GroupId g) {
  g = memo_->Find(g);
  auto it = cache_.find(g);
  if (it != cache_.end()) return it->second;
  FdSet fds = Compute(g);
  return cache_.emplace(g, std::move(fds)).first->second;
}

bool FdAnalysis::IsKeyOf(const std::set<std::string>& attrs, GroupId g) {
  g = memo_->Find(g);
  const MemoGroup& grp = memo_->group(g);
  std::set<std::string> all;
  for (const Column& c : grp.schema.columns()) all.insert(c.name);
  return Fds(g).Determines(attrs, all);
}

FdSet FdAnalysis::Compute(GroupId g) {
  const MemoGroup& grp = memo_->group(g);
  if (grp.is_leaf) {
    const TableDef* def = catalog_->FindTable(grp.table);
    return def == nullptr ? FdSet() : def->Fds();
  }
  // Use the first live member; all are equivalent expressions.
  const MemoExpr* e = nullptr;
  for (int eid : grp.exprs) {
    if (!memo_->expr(eid).dead) {
      e = &memo_->expr(eid);
      break;
    }
  }
  AUXVIEW_CHECK(e != nullptr);
  std::set<std::string> out_cols;
  for (const Column& c : grp.schema.columns()) out_cols.insert(c.name);
  switch (e->kind()) {
    case OpKind::kScan:
      return FdSet();
    case OpKind::kSelect:
    case OpKind::kDupElim:
      return Fds(e->inputs[0]);
    case OpKind::kProject:
      return Fds(e->inputs[0]).Restrict(out_cols);
    case OpKind::kJoin: {
      FdSet fds = Fds(e->inputs[0]);
      fds.AddAll(Fds(e->inputs[1]));
      return fds.Restrict(out_cols);
    }
    case OpKind::kAggregate: {
      FdSet fds = Fds(e->inputs[0]).Restrict(out_cols);
      std::set<std::string> lhs(e->op->group_by().begin(),
                                e->op->group_by().end());
      fds.Add(std::move(lhs), out_cols);
      return fds;
    }
  }
  return FdSet();
}

}  // namespace auxview
