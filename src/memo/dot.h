#ifndef AUXVIEW_MEMO_DOT_H_
#define AUXVIEW_MEMO_DOT_H_

#include <set>
#include <string>

#include "memo/memo.h"

namespace auxview {

/// Graphviz rendering of the expression DAG: equivalence nodes as boxes,
/// operation nodes as ellipses; groups in `marked` (a view set) are shaded.
std::string MemoToDot(const Memo& memo, const std::set<GroupId>& marked = {});

}  // namespace auxview

#endif  // AUXVIEW_MEMO_DOT_H_
