#include "memo/rules.h"

#include <algorithm>

namespace auxview {

namespace {

Expr::Ptr Placeholder(const Memo& memo, GroupId g) {
  const MemoGroup& grp = memo.group(g);
  return Expr::Scan("@g" + std::to_string(grp.id), grp.schema);
}

std::set<std::string> AttrsOf(const Memo& memo, GroupId g) {
  std::set<std::string> out;
  for (const Column& c : memo.group(g).schema.columns()) out.insert(c.name);
  return out;
}

bool Subset(const std::set<std::string>& a, const std::set<std::string>& b) {
  return std::all_of(a.begin(), a.end(),
                     [&](const std::string& x) { return b.count(x) > 0; });
}

/// Live operation-node ids of a group, snapshotted.
std::vector<int> LiveExprsOf(const Memo& memo, GroupId g) {
  std::vector<int> out;
  for (int eid : memo.group(g).exprs) {
    if (!memo.expr(eid).dead) out.push_back(eid);
  }
  return out;
}

/// Attempts AddExpr; counts a success, swallows inapplicability errors.
int TryAddExpr(Memo* memo, GroupId group, const Expr::Ptr& op,
               std::vector<GroupId> inputs) {
  if (op == nullptr) return 0;
  const int before = memo->num_exprs();
  StatusOr<int> result = memo->AddExpr(group, op, std::move(inputs));
  if (!result.ok()) return 0;
  return memo->num_exprs() > before ? 1 : 0;
}

Expr::Ptr TryJoinOp(const Memo& memo, GroupId l, GroupId r,
                    std::vector<std::string> attrs) {
  StatusOr<Expr::Ptr> op =
      Expr::Join(Placeholder(memo, l), Placeholder(memo, r), std::move(attrs));
  return op.ok() ? std::move(op).value() : nullptr;
}

Expr::Ptr TrySelectOp(const Memo& memo, GroupId child, Scalar::Ptr pred) {
  StatusOr<Expr::Ptr> op =
      Expr::Select(Placeholder(memo, child), std::move(pred));
  return op.ok() ? std::move(op).value() : nullptr;
}

Expr::Ptr TryAggOp(const Memo& memo, GroupId child,
                   std::vector<std::string> group_by,
                   std::vector<AggSpec> aggs) {
  StatusOr<Expr::Ptr> op = Expr::Aggregate(
      Placeholder(memo, child), std::move(group_by), std::move(aggs));
  return op.ok() ? std::move(op).value() : nullptr;
}

}  // namespace

StatusOr<int> JoinCommuteRule::Apply(RuleContext& ctx, int expr_id) const {
  const MemoExpr e = ctx.memo->expr(expr_id);  // copy: memo mutation reallocates
  if (e.dead || e.kind() != OpKind::kJoin) return 0;
  const GroupId group = ctx.memo->Find(e.group);
  Expr::Ptr op = TryJoinOp(*ctx.memo, e.inputs[1], e.inputs[0],
                           e.op->join_attrs());
  return TryAddExpr(ctx.memo, group, op, {e.inputs[1], e.inputs[0]});
}

StatusOr<int> JoinAssocRule::Apply(RuleContext& ctx, int expr_id) const {
  const MemoExpr e = ctx.memo->expr(expr_id);  // copy: memo mutation reallocates
  if (e.dead || e.kind() != OpKind::kJoin) return 0;
  Memo& memo = *ctx.memo;
  const GroupId group = memo.Find(e.group);
  const GroupId left = memo.Find(e.inputs[0]);
  const GroupId right = memo.Find(e.inputs[1]);
  const std::vector<std::string> s2 = e.op->join_attrs();
  int added = 0;
  for (int fid : LiveExprsOf(memo, left)) {
    const MemoExpr f = memo.expr(fid);  // copy
    if (f.kind() != OpKind::kJoin) continue;
    const GroupId a = memo.Find(f.inputs[0]);
    const GroupId b = memo.Find(f.inputs[1]);
    const std::vector<std::string> s1 = f.op->join_attrs();
    const std::set<std::string> attrs_b = AttrsOf(memo, b);
    std::vector<std::string> s2_inner;   // S2 that lands on B
    std::vector<std::string> s2_outer;   // S2 that must stay with A
    for (const std::string& x : s2) {
      (attrs_b.count(x) > 0 ? s2_inner : s2_outer).push_back(x);
    }
    if (s2_inner.empty()) continue;  // would need a cross product
    std::vector<std::string> s1_outer = s1;
    for (const std::string& x : s2_outer) {
      if (std::find(s1_outer.begin(), s1_outer.end(), x) == s1_outer.end()) {
        s1_outer.push_back(x);
      }
    }
    Expr::Ptr inner_op = TryJoinOp(memo, b, right, s2_inner);
    if (inner_op == nullptr) continue;
    StatusOr<GroupId> inner = memo.AddExprNewGroup(inner_op, {b, right});
    if (!inner.ok()) continue;
    Expr::Ptr outer_op = TryJoinOp(memo, a, *inner, s1_outer);
    added += TryAddExpr(&memo, group, outer_op, {a, *inner});
  }
  return added;
}

StatusOr<int> SelectPushdownRule::Apply(RuleContext& ctx, int expr_id) const {
  const MemoExpr e = ctx.memo->expr(expr_id);  // copy: memo mutation reallocates
  if (e.dead || e.kind() != OpKind::kSelect) return 0;
  Memo& memo = *ctx.memo;
  const GroupId group = memo.Find(e.group);
  const GroupId input = memo.Find(e.inputs[0]);
  const std::set<std::string> pred_cols = e.op->predicate()->Columns();
  int added = 0;
  for (int fid : LiveExprsOf(memo, input)) {
    const MemoExpr f = memo.expr(fid);  // copy
    if (f.kind() == OpKind::kJoin) {
      for (int side = 0; side < 2; ++side) {
        const GroupId target = memo.Find(f.inputs[side]);
        const GroupId other = memo.Find(f.inputs[1 - side]);
        if (!Subset(pred_cols, AttrsOf(memo, target))) continue;
        Expr::Ptr sel_op = TrySelectOp(memo, target, e.op->predicate());
        if (sel_op == nullptr) continue;
        StatusOr<GroupId> sel = memo.AddExprNewGroup(sel_op, {target});
        if (!sel.ok()) continue;
        const GroupId l = side == 0 ? *sel : other;
        const GroupId r = side == 0 ? other : *sel;
        Expr::Ptr join_op = TryJoinOp(memo, l, r, f.op->join_attrs());
        added += TryAddExpr(&memo, group, join_op, {l, r});
      }
    } else if (f.kind() == OpKind::kAggregate) {
      const std::set<std::string> gb(f.op->group_by().begin(),
                                     f.op->group_by().end());
      if (!Subset(pred_cols, gb)) continue;
      const GroupId child = memo.Find(f.inputs[0]);
      Expr::Ptr sel_op = TrySelectOp(memo, child, e.op->predicate());
      if (sel_op == nullptr) continue;
      StatusOr<GroupId> sel = memo.AddExprNewGroup(sel_op, {child});
      if (!sel.ok()) continue;
      Expr::Ptr agg_op = TryAggOp(memo, *sel, f.op->group_by(), f.op->aggs());
      added += TryAddExpr(&memo, group, agg_op, {*sel});
    }
  }
  return added;
}

StatusOr<int> SelectMergeRule::Apply(RuleContext& ctx, int expr_id) const {
  const MemoExpr e = ctx.memo->expr(expr_id);  // copy: memo mutation reallocates
  if (e.dead || e.kind() != OpKind::kSelect) return 0;
  Memo& memo = *ctx.memo;
  const GroupId group = memo.Find(e.group);
  const GroupId input = memo.Find(e.inputs[0]);
  int added = 0;
  for (int fid : LiveExprsOf(memo, input)) {
    const MemoExpr f = memo.expr(fid);  // copy
    if (f.kind() != OpKind::kSelect) continue;
    const GroupId child = memo.Find(f.inputs[0]);
    Scalar::Ptr combined =
        Scalar::And(f.op->predicate(), e.op->predicate());
    Expr::Ptr sel_op = TrySelectOp(memo, child, std::move(combined));
    added += TryAddExpr(&memo, group, sel_op, {child});
  }
  return added;
}

StatusOr<int> EagerAggregationRule::Apply(RuleContext& ctx,
                                          int expr_id) const {
  const MemoExpr e = ctx.memo->expr(expr_id);  // copy: memo mutation reallocates
  if (e.dead || e.kind() != OpKind::kAggregate) return 0;
  Memo& memo = *ctx.memo;
  const GroupId group = memo.Find(e.group);
  const GroupId input = memo.Find(e.inputs[0]);
  const std::vector<std::string>& group_by = e.op->group_by();
  const std::set<std::string> gb(group_by.begin(), group_by.end());
  int added = 0;
  for (int fid : LiveExprsOf(memo, input)) {
    const MemoExpr f = memo.expr(fid);  // copy
    if (f.kind() != OpKind::kJoin) continue;
    const GroupId a = memo.Find(f.inputs[0]);
    const GroupId b = memo.Find(f.inputs[1]);
    const std::vector<std::string>& s = f.op->join_attrs();
    const std::set<std::string> s_set(s.begin(), s.end());
    // Condition 1: join attributes are grouped on (groups stay intact).
    if (!Subset(s_set, gb)) continue;
    // Condition 2: aggregate arguments come entirely from A.
    const std::set<std::string> attrs_a = AttrsOf(memo, a);
    bool args_from_a = true;
    for (const AggSpec& agg : e.op->aggs()) {
      if (agg.arg != nullptr && !Subset(agg.arg->Columns(), attrs_a)) {
        args_from_a = false;
        break;
      }
    }
    if (!args_from_a) continue;
    // Condition 3: S is a key of B (the join neither duplicates nor drops
    // rows within a group, and B's other attributes are determined by S).
    if (!ctx.fds->IsKeyOf(s_set, b)) continue;
    // Inner grouping: the A-side group-by attributes (includes S).
    std::vector<std::string> inner_gb;
    for (const std::string& g : group_by) {
      if (attrs_a.count(g) > 0) inner_gb.push_back(g);
    }
    Expr::Ptr inner_op = TryAggOp(memo, a, inner_gb, e.op->aggs());
    if (inner_op == nullptr) continue;
    StatusOr<GroupId> inner = memo.AddExprNewGroup(inner_op, {a});
    if (!inner.ok()) continue;
    Expr::Ptr outer_op = TryJoinOp(memo, *inner, b, s);
    added += TryAddExpr(&memo, group, outer_op, {*inner, b});
  }
  if (added > 0) ctx.fds->Clear();
  return added;
}

StatusOr<int> LazyAggregationRule::Apply(RuleContext& ctx, int expr_id) const {
  const MemoExpr e = ctx.memo->expr(expr_id);  // copy: memo mutation reallocates
  if (e.dead || e.kind() != OpKind::kJoin) return 0;
  Memo& memo = *ctx.memo;
  const GroupId group = memo.Find(e.group);
  const GroupId left = memo.Find(e.inputs[0]);
  const GroupId right = memo.Find(e.inputs[1]);
  const std::vector<std::string>& s = e.op->join_attrs();
  const std::set<std::string> s_set(s.begin(), s.end());
  int added = 0;
  for (int fid : LiveExprsOf(memo, left)) {
    const MemoExpr f = memo.expr(fid);  // copy
    if (f.kind() != OpKind::kAggregate) continue;
    const std::vector<std::string>& inner_gb = f.op->group_by();
    const std::set<std::string> inner_gb_set(inner_gb.begin(), inner_gb.end());
    if (!Subset(s_set, inner_gb_set)) continue;
    if (!ctx.fds->IsKeyOf(s_set, right)) continue;
    const GroupId a = memo.Find(f.inputs[0]);
    Expr::Ptr join_op = TryJoinOp(memo, a, right, s);
    if (join_op == nullptr) continue;
    StatusOr<GroupId> inner = memo.AddExprNewGroup(join_op, {a, right});
    if (!inner.ok()) continue;
    // Outer grouping adds B's surviving attributes — but only those the
    // group's canonical schema needs (the rest are determined by S anyway,
    // since S is a key of B).
    const Schema& canonical = memo.group(group).schema;
    std::vector<std::string> outer_gb = inner_gb;
    for (const Column& c : memo.group(right).schema.columns()) {
      if (s_set.count(c.name) == 0 && canonical.Contains(c.name)) {
        outer_gb.push_back(c.name);
      }
    }
    Expr::Ptr agg_op = TryAggOp(memo, *inner, outer_gb, f.op->aggs());
    added += TryAddExpr(&memo, group, agg_op, {*inner});
  }
  if (added > 0) ctx.fds->Clear();
  return added;
}

StatusOr<int> GeneralEagerAggregationRule::Apply(RuleContext& ctx,
                                                 int expr_id) const {
  const MemoExpr e = ctx.memo->expr(expr_id);  // copy: memo mutation reallocates
  if (e.dead || e.kind() != OpKind::kAggregate) return 0;
  Memo& memo = *ctx.memo;
  const GroupId group = memo.Find(e.group);
  const GroupId input = memo.Find(e.inputs[0]);
  const std::vector<std::string>& group_by = e.op->group_by();

  // Guard: an aggregate whose every item is FUNC(col) AS col is itself the
  // re-aggregation this rule produces — firing again would pre-aggregate
  // partials forever.
  bool already_reaggregation = !e.op->aggs().empty();
  for (const AggSpec& agg : e.op->aggs()) {
    const bool self_named = agg.arg != nullptr &&
                            agg.arg->op() == ScalarOp::kColumn &&
                            agg.arg->column_name() == agg.output_name;
    if (!self_named) already_reaggregation = false;
  }
  if (already_reaggregation) return 0;

  // AVG does not decompose into partials (without a count column).
  for (const AggSpec& agg : e.op->aggs()) {
    if (agg.func == AggFunc::kAvg) return 0;
  }

  int added = 0;
  for (int fid : LiveExprsOf(memo, input)) {
    const MemoExpr f = memo.expr(fid);  // copy
    if (f.kind() != OpKind::kJoin) continue;
    const GroupId a = memo.Find(f.inputs[0]);
    const GroupId b = memo.Find(f.inputs[1]);
    const std::vector<std::string>& s = f.op->join_attrs();
    const std::set<std::string> attrs_a = AttrsOf(memo, a);
    // One level of pre-aggregation only: pushing partials below partials
    // multiplies the memo without adding useful plans.
    bool a_already_aggregated = false;
    for (int aid : memo.group(a).exprs) {
      if (!memo.expr(aid).dead &&
          memo.expr(aid).kind() == OpKind::kAggregate) {
        a_already_aggregated = true;
      }
    }
    if (a_already_aggregated) continue;
    // Every aggregate argument must come from A.
    bool args_from_a = true;
    for (const AggSpec& agg : e.op->aggs()) {
      if (agg.arg != nullptr && !Subset(agg.arg->Columns(), attrs_a)) {
        args_from_a = false;
        break;
      }
    }
    if (!args_from_a) continue;
    // Inner grouping: A's share of the group-by plus the join attributes —
    // sorted, so permuted derivations of the same partial deduplicate.
    std::set<std::string> inner_gb_set;
    for (const std::string& g : group_by) {
      if (attrs_a.count(g) > 0) inner_gb_set.insert(g);
    }
    inner_gb_set.insert(s.begin(), s.end());
    std::vector<std::string> inner_gb(inner_gb_set.begin(),
                                      inner_gb_set.end());
    // Partial aggregates keep the original output names (so the special-
    // case push-down's result deduplicates with this one where both apply);
    // outer aggregates re-aggregate those columns under the same names.
    std::vector<AggSpec> outer_aggs;
    bool ok = true;
    for (const AggSpec& agg : e.op->aggs()) {
      AggSpec outer;
      outer.output_name = agg.output_name;
      outer.arg = Scalar::Column(agg.output_name);
      switch (agg.func) {
        case AggFunc::kSum:
        case AggFunc::kCount:
          outer.func = AggFunc::kSum;  // partial counts re-add as sums
          break;
        case AggFunc::kMin:
          outer.func = AggFunc::kMin;
          break;
        case AggFunc::kMax:
          outer.func = AggFunc::kMax;
          break;
        case AggFunc::kAvg:
          ok = false;
          break;
      }
      outer_aggs.push_back(std::move(outer));
    }
    if (!ok) continue;
    Expr::Ptr inner_op = TryAggOp(memo, a, inner_gb, e.op->aggs());
    if (inner_op == nullptr) continue;
    StatusOr<GroupId> partial = memo.AddExprNewGroup(inner_op, {a});
    if (!partial.ok()) continue;
    Expr::Ptr join_op = TryJoinOp(memo, *partial, b, s);
    if (join_op == nullptr) continue;
    StatusOr<GroupId> joined = memo.AddExprNewGroup(join_op, {*partial, b});
    if (!joined.ok()) continue;
    Expr::Ptr outer_op = TryAggOp(memo, *joined, group_by, outer_aggs);
    added += TryAddExpr(&memo, group, outer_op, {*joined});
  }
  if (added > 0) ctx.fds->Clear();
  return added;
}

std::vector<std::unique_ptr<Rule>> DefaultRuleSet() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<JoinCommuteRule>());
  rules.push_back(std::make_unique<JoinAssocRule>());
  rules.push_back(std::make_unique<SelectPushdownRule>());
  rules.push_back(std::make_unique<SelectMergeRule>());
  rules.push_back(std::make_unique<EagerAggregationRule>());
  rules.push_back(std::make_unique<LazyAggregationRule>());
  return rules;
}

std::vector<std::unique_ptr<Rule>> ExtendedRuleSet() {
  std::vector<std::unique_ptr<Rule>> rules = DefaultRuleSet();
  rules.push_back(std::make_unique<GeneralEagerAggregationRule>());
  return rules;
}

std::vector<std::unique_ptr<Rule>> AggregationOnlyRuleSet() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<EagerAggregationRule>());
  rules.push_back(std::make_unique<LazyAggregationRule>());
  return rules;
}

}  // namespace auxview
