#ifndef AUXVIEW_CONCURRENCY_SNAPSHOT_H_
#define AUXVIEW_CONCURRENCY_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "storage/database.h"
#include "storage/page_counter.h"
#include "storage/table.h"

namespace auxview {

/// An immutable image of the database — base tables *and* materialized
/// views — published at one commit epoch. Table versions are refcounted
/// (shared_ptr): publishing a new epoch clones only the tables the commit
/// touched and shares every other version with the previous snapshot, so a
/// commit costs O(touched tables), not O(database).
///
/// A Snapshot is a TableSource, so the executor can run any query against
/// it directly; its tables charge a permanently disabled PageCounter, making
/// snapshot scans free of both modeled I/O and cross-thread counter writes —
/// reads are lock-free once the snapshot pointer is in hand.
class Snapshot : public TableSource {
 public:
  Snapshot(uint64_t epoch,
           std::map<std::string, std::shared_ptr<const Table>> tables)
      : epoch_(epoch), tables_(std::move(tables)) {}

  /// Commit epoch this snapshot reflects (0 = the initial publication).
  uint64_t epoch() const { return epoch_; }

  const Table* ResolveTable(const std::string& name) const override {
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : it->second.get();
  }

  /// The refcounted version of one table (nullptr when absent).
  std::shared_ptr<const Table> TableVersion(const std::string& name) const {
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : it->second;
  }

  std::vector<std::string> TableNames() const {
    std::vector<std::string> names;
    names.reserve(tables_.size());
    for (const auto& [name, table] : tables_) names.push_back(name);
    return names;
  }

 private:
  uint64_t epoch_;
  std::map<std::string, std::shared_ptr<const Table>> tables_;
};

class SnapshotManager;

/// A pin on one snapshot: while alive, the conflict tracker retains every
/// commit footprint a writer holding this snapshot might need to validate
/// against, and the `concurrency.snapshot_pins` gauge counts it. Movable,
/// not copyable; must not outlive its SnapshotManager.
class SnapshotRef {
 public:
  SnapshotRef() = default;
  SnapshotRef(SnapshotRef&& other) noexcept;
  SnapshotRef& operator=(SnapshotRef&& other) noexcept;
  ~SnapshotRef();

  SnapshotRef(const SnapshotRef&) = delete;
  SnapshotRef& operator=(const SnapshotRef&) = delete;

  bool valid() const { return snapshot_ != nullptr; }
  const Snapshot& operator*() const { return *snapshot_; }
  const Snapshot* operator->() const { return snapshot_.get(); }
  const Snapshot* get() const { return snapshot_.get(); }
  uint64_t epoch() const { return snapshot_ ? snapshot_->epoch() : 0; }

  /// Drops the pin early (idempotent).
  void Release();

 private:
  friend class SnapshotManager;
  SnapshotRef(SnapshotManager* manager,
              std::shared_ptr<const Snapshot> snapshot)
      : manager_(manager), snapshot_(std::move(snapshot)) {}

  SnapshotManager* manager_ = nullptr;
  std::shared_ptr<const Snapshot> snapshot_;
};

/// Publishes and pins snapshots. `Publish` runs under the commit lock (the
/// controller's funnel); `Pin` and pin release are internally synchronized
/// so reader threads never contend with anything but a brief mutex around a
/// shared_ptr copy.
class SnapshotManager {
 public:
  SnapshotManager();

  /// Clones every table of `db` as epoch 0 — the initial publication.
  void PublishAll(const Database& db);

  /// Publishes the next epoch: fresh clones for `touched` (tables created,
  /// dropped, or mutated by the commit), shared versions for the rest.
  /// Returns the new epoch.
  uint64_t Publish(const Database& db, const std::vector<std::string>& touched);

  /// Pins the latest snapshot.
  SnapshotRef Pin();

  /// Epoch of the latest published snapshot.
  uint64_t current_epoch() const;

  /// Oldest epoch still pinned (current epoch when nothing is pinned) — the
  /// horizon below which the conflict tracker may prune commit footprints.
  uint64_t MinPinnedEpoch() const;

 private:
  friend class SnapshotRef;
  void Unpin(uint64_t epoch);

  mutable std::mutex mu_;
  /// Disabled forever: snapshot tables never charge modeled I/O, and a
  /// never-written counter is what makes concurrent snapshot reads race-free.
  PageCounter snapshot_counter_;
  std::shared_ptr<const Snapshot> current_;
  std::multiset<uint64_t> pinned_epochs_;
};

}  // namespace auxview

#endif  // AUXVIEW_CONCURRENCY_SNAPSHOT_H_
