#ifndef AUXVIEW_CONCURRENCY_WRITER_H_
#define AUXVIEW_CONCURRENCY_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "concurrency/controller.h"
#include "concurrency/delta_set.h"
#include "concurrency/snapshot.h"

namespace auxview {

/// One writer's transaction handle: a pinned snapshot plus a private
/// DeltaSet. Every read goes through the overlay (snapshot ∪ own staged
/// changes) and is recorded in the transaction's read footprint; every
/// write is staged and recorded in the write footprint. Commit() hands the
/// footprinted delta to the controller's optimistic funnel.
///
/// Not thread-safe — a WriterTxn belongs to one thread; concurrency comes
/// from many WriterTxns over one ConcurrencyController. This is the
/// SQL-free core; TxnSession (src/api/txn_session.h) layers statement
/// execution on top.
class WriterTxn : public TableSource {
 public:
  /// Pins the latest snapshot.
  explicit WriterTxn(ConcurrencyController* controller);

  /// TableSource over the overlay: queries executed against this writer see
  /// snapshot ∪ staged delta. Does NOT record a read footprint — use Scan /
  /// LookupEq for footprinted reads, or record on footprint() directly.
  const Table* ResolveTable(const std::string& name) const override;

  const Snapshot& snapshot() const { return *snapshot_; }
  uint64_t snapshot_epoch() const { return snapshot_.epoch(); }

  /// All rows of `relation` through the overlay; records a whole-relation
  /// read (any later committed write to `relation` will conflict).
  StatusOr<std::vector<CountedRow>> Scan(const std::string& relation);

  /// Rows of `relation` matching `key` on `attrs` through the overlay;
  /// records a key read (only later committed writes matching the key
  /// conflict).
  StatusOr<std::vector<CountedRow>> LookupEq(
      const std::string& relation, const std::vector<std::string>& attrs,
      const Row& key);

  /// Stages `count` copies of `row`. A blind write: no read footprint, so
  /// two inserts of different rows into the same relation never conflict.
  Status Insert(const std::string& relation, const Row& row, int64_t count = 1);

  /// Stages removal of `count` copies; the overlay must hold at least that
  /// many (the row must be visible to this writer).
  Status Delete(const std::string& relation, const Row& row, int64_t count = 1);

  /// Stages an update of `count` copies of `old_row` to `new_row`.
  Status Modify(const std::string& relation, const Row& old_row,
                const Row& new_row, int64_t count = 1);

  /// One optimistic commit attempt. On kCommitted the staged set is cleared
  /// and a fresh snapshot pinned (the writer is ready for its next
  /// transaction). On kConflict or kRejected the staged set and snapshot
  /// are kept for inspection; call Restart() to retry or Abort() to drop.
  StatusOr<CommitOutcome> Commit();

  /// Drops all staged changes and repins the latest snapshot.
  void Abort();

  /// Abort() that counts as a retry (`concurrency.retries`) — call when
  /// re-running a conflicted transaction on a fresh snapshot.
  void Restart();

  DeltaSet& delta() { return delta_; }
  const DeltaSet& delta() const { return delta_; }
  TxnFootprint& footprint() { return delta_.footprint(); }

 private:
  /// Overlay table or NotFound.
  StatusOr<const Table*> Overlay(const std::string& relation) const;

  ConcurrencyController* controller_;
  SnapshotRef snapshot_;
  DeltaSet delta_;
};

}  // namespace auxview

#endif  // AUXVIEW_CONCURRENCY_WRITER_H_
