#ifndef AUXVIEW_CONCURRENCY_CONFLICT_H_
#define AUXVIEW_CONCURRENCY_CONFLICT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "concurrency/delta_set.h"

namespace auxview {

/// First-committer-wins validation (the optimistic half of the concurrency
/// layer; see docs/CONCURRENCY.md and map_api's DeltaView commit/merge
/// protocol, SNIPPETS.md 2).
///
/// Every commit records its write footprint tagged with the epoch it
/// published. A writer validating at commit compares its own read/write
/// footprint against every commit newer than its snapshot epoch:
///
///   - write-write: any row this writer stages that a newer commit also
///     wrote (insert, delete, or either half of a modify) conflicts — the
///     first committer won, this writer's view of that key is stale.
///   - read-write: any newer committed write matching one of this writer's
///     read predicates conflicts — the rows its statements selected from
///     would have been different.
///
/// The history is pruned below the oldest pinned snapshot epoch; a writer
/// whose snapshot predates the retained history conservatively conflicts
/// (it cannot prove isolation, so it must retry on a fresh snapshot).
class ConflictTracker {
 public:
  /// Records the write footprint a commit published at `epoch`. `writes`
  /// carries row-level footprints for the base relations the commit staged;
  /// `touched` lists every stored table the commit rewrote (base relations
  /// plus materialized views, ViewManager::last_commit_tables) — reads of a
  /// touched table without row-level write info conflict coarsely, which is
  /// how a SELECT through a materialized view stays isolated.
  void RecordCommit(uint64_t epoch,
                    const std::map<std::string, TxnFootprint::RowSet>& writes,
                    const std::vector<std::string>& touched);

  /// Validates `footprint` for a writer whose snapshot is `snapshot_epoch`.
  /// Returns nullopt when the commit may proceed, else a human-readable
  /// description of the first conflict found.
  std::optional<std::string> Validate(const TxnFootprint& footprint,
                                      uint64_t snapshot_epoch) const;

  /// Drops commit records at or below `min_epoch` — safe once no live
  /// snapshot is older (SnapshotManager::MinPinnedEpoch).
  void PruneThrough(uint64_t min_epoch);

  /// Number of retained commit records.
  size_t history_size() const;

 private:
  struct CommitRecord {
    uint64_t epoch = 0;
    std::map<std::string, TxnFootprint::RowSet> writes;
    /// Tables rewritten without row-level detail (materialized views).
    std::set<std::string> touched;
  };

  mutable std::mutex mu_;
  std::deque<CommitRecord> history_;  // ascending epoch
  /// Highest epoch ever pruned: snapshots at or below it fail validation.
  uint64_t pruned_through_ = 0;
};

}  // namespace auxview

#endif  // AUXVIEW_CONCURRENCY_CONFLICT_H_
