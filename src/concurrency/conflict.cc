#include "concurrency/conflict.h"

namespace auxview {

void ConflictTracker::RecordCommit(
    uint64_t epoch, const std::map<std::string, TxnFootprint::RowSet>& writes,
    const std::vector<std::string>& touched) {
  CommitRecord record;
  record.epoch = epoch;
  record.writes = writes;
  // Row-level info wins; only tables without it (materialized views) are
  // kept at coarse granularity.
  for (const std::string& name : touched) {
    if (writes.find(name) == writes.end()) record.touched.insert(name);
  }
  std::lock_guard<std::mutex> lock(mu_);
  history_.push_back(std::move(record));
}

std::optional<std::string> ConflictTracker::Validate(
    const TxnFootprint& footprint, uint64_t snapshot_epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (snapshot_epoch < pruned_through_) {
    return "snapshot epoch " + std::to_string(snapshot_epoch) +
           " predates retained commit history (pruned through " +
           std::to_string(pruned_through_) + "); retry on a fresh snapshot";
  }
  for (const CommitRecord& commit : history_) {
    if (commit.epoch <= snapshot_epoch) continue;
    // Write-write on the same key: first committer wins.
    for (const auto& [relation, rows] : footprint.writes) {
      auto it = commit.writes.find(relation);
      if (it == commit.writes.end()) continue;
      const TxnFootprint::RowSet& committed = it->second;
      // Probe the smaller set against the larger.
      const bool ours_smaller = rows.size() <= committed.size();
      const TxnFootprint::RowSet& probe = ours_smaller ? rows : committed;
      const TxnFootprint::RowSet& build = ours_smaller ? committed : rows;
      for (const Row& row : probe) {
        if (build.count(row) > 0) {
          return "write-write conflict on " + relation + " row " +
                 RowToString(row) + " (committed at epoch " +
                 std::to_string(commit.epoch) + ")";
        }
      }
    }
    // Read-write: a newer commit wrote a row this writer's reads selected on.
    for (const ReadPredicate& read : footprint.reads) {
      auto it = commit.writes.find(read.relation);
      if (it == commit.writes.end()) {
        // No row-level info: coarse conflict if the commit rewrote the table
        // at all (reads through materialized views land here).
        if (commit.touched.count(read.relation) > 0) {
          return "read-write conflict on " + read.relation +
                 " (rewritten at epoch " + std::to_string(commit.epoch) + ")";
        }
        continue;
      }
      for (const Row& row : it->second) {
        if (read.Matches(row)) {
          return "read-write conflict on " + read.relation +
                 (read.equalities.empty() ? " (whole-relation read)"
                                          : " key read") +
                 " vs row " + RowToString(row) + " committed at epoch " +
                 std::to_string(commit.epoch);
        }
      }
    }
  }
  return std::nullopt;
}

void ConflictTracker::PruneThrough(uint64_t min_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  while (!history_.empty() && history_.front().epoch <= min_epoch) {
    pruned_through_ = history_.front().epoch;
    history_.pop_front();
  }
}

size_t ConflictTracker::history_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_.size();
}

}  // namespace auxview
