#include "concurrency/delta_set.h"

#include "common/check.h"
#include "concurrency/snapshot.h"

namespace auxview {

DeltaSet::DeltaSet() { overlay_counter_.set_enabled(false); }

void DeltaSet::StageInsert(const std::string& relation, const Row& row,
                           int64_t count) {
  if (count == 0) return;
  deltas_[relation].Add(row, count);
  footprint_.AddWrite(relation, row);
  merged_.erase(relation);
}

void DeltaSet::StageDelete(const std::string& relation, const Row& row,
                           int64_t count) {
  if (count == 0) return;
  deltas_[relation].Add(row, -count);
  footprint_.AddWrite(relation, row);
  merged_.erase(relation);
}

void DeltaSet::StageModify(const std::string& relation, const Row& old_row,
                           const Row& new_row, int64_t count) {
  if (count == 0) return;
  Relation& delta = deltas_[relation];
  delta.Add(old_row, -count);
  delta.Add(new_row, count);
  footprint_.AddWrite(relation, old_row);
  footprint_.AddWrite(relation, new_row);
  merged_.erase(relation);
}

int64_t DeltaSet::DeltaOf(const std::string& relation, const Row& row) const {
  auto it = deltas_.find(relation);
  return it == deltas_.end() ? 0 : it->second.CountOf(row);
}

bool DeltaSet::Touches(const std::string& relation) const {
  auto it = deltas_.find(relation);
  return it != deltas_.end() && !it->second.empty();
}

const Table* DeltaSet::OverlayTable(const std::string& relation,
                                    const Snapshot& snapshot) const {
  const Table* base = snapshot.ResolveTable(relation);
  auto delta_it = deltas_.find(relation);
  if (delta_it == deltas_.end() || delta_it->second.empty()) return base;
  auto cached = merged_.find(relation);
  if (cached != merged_.end()) return cached->second.get();
  if (base == nullptr) return nullptr;  // post-Prepare relations always exist
  std::unique_ptr<Table> merged = base->Clone(&overlay_counter_);
  // Apply positives first so a same-row delete never dips below zero when
  // the net change is non-negative; staging invariants guarantee the final
  // multiplicities are non-negative.
  for (const auto& [row, count] : delta_it->second.SortedRows()) {
    if (count > 0) {
      const Status st = merged->Apply(row, count);
      AUXVIEW_CHECK_MSG(st.ok(), st.ToString().c_str());
    }
  }
  for (const auto& [row, count] : delta_it->second.SortedRows()) {
    if (count < 0) {
      const Status st = merged->Apply(row, count);
      AUXVIEW_CHECK_MSG(st.ok(), st.ToString().c_str());
    }
  }
  const Table* out = merged.get();
  merged_.emplace(relation, std::move(merged));
  return out;
}

ConcreteTxn DeltaSet::ToConcreteTxn() const {
  ConcreteTxn txn;
  for (const auto& [relation, delta] : deltas_) {
    if (delta.empty()) continue;
    TableUpdate update;
    update.relation = relation;
    for (const auto& [row, count] : delta.SortedRows()) {
      if (count > 0) {
        update.inserts.emplace_back(row, count);
      } else if (count < 0) {
        update.deletes.emplace_back(row, -count);
      }
    }
    if (!update.empty()) txn.updates.push_back(std::move(update));
  }
  return txn;
}

bool DeltaSet::empty() const {
  for (const auto& [relation, delta] : deltas_) {
    if (!delta.empty()) return false;
  }
  return true;
}

void DeltaSet::Clear() {
  deltas_.clear();
  footprint_.Clear();
  merged_.clear();
}

}  // namespace auxview
