#ifndef AUXVIEW_CONCURRENCY_DELTA_SET_H_
#define AUXVIEW_CONCURRENCY_DELTA_SET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/value.h"
#include "exec/relation.h"
#include "maintain/concrete.h"
#include "storage/page_counter.h"
#include "storage/table.h"

namespace auxview {

class Snapshot;

/// One unit of a writer's read footprint: either a whole-relation scan or a
/// conjunction of column = value equalities (an index-key read). Validation
/// tests it against the rows later commits wrote.
struct ReadPredicate {
  std::string relation;
  /// Column index -> value the writer's read filtered on. Empty means the
  /// whole relation was read (any write to it conflicts).
  std::vector<std::pair<int, Value>> equalities;

  bool Matches(const Row& row) const {
    for (const auto& [col, value] : equalities) {
      if (col < 0 || static_cast<size_t>(col) >= row.size()) return false;
      if (row[static_cast<size_t>(col)].Compare(value) != 0) return false;
    }
    return true;  // vacuously true for a whole-relation read
  }
};

/// The key footprint commit validation works on: every row this writer
/// writes (inserted rows, deleted rows, and both halves of each modify) and
/// every predicate its statement-building reads evaluated.
struct TxnFootprint {
  using RowSet = std::unordered_set<Row, RowHash, RowEq>;
  std::map<std::string, RowSet> writes;
  std::vector<ReadPredicate> reads;

  void AddWrite(const std::string& relation, const Row& row) {
    writes[relation].insert(row);
  }
  void AddScanRead(const std::string& relation) {
    reads.push_back(ReadPredicate{relation, {}});
  }
  void AddKeyRead(const std::string& relation,
                  std::vector<std::pair<int, Value>> equalities) {
    reads.push_back(ReadPredicate{relation, std::move(equalities)});
  }

  bool empty() const { return writes.empty() && reads.empty(); }
  void Clear() {
    writes.clear();
    reads.clear();
  }
};

/// A writer's private overlay: per relation, a signed bag of staged changes
/// relative to the pinned snapshot (positive = copies this transaction
/// inserts, negative = snapshot copies it removes; an update stages both
/// halves). Reads through the writer see snapshot ∪ this delta; nothing is
/// visible to other sessions until commit merges the set into one
/// ConcreteTxn and funnels it through the maintained pipeline.
///
/// Overlay reads materialize a merged table version lazily — a clone of the
/// snapshot version with the staged delta applied — and cache it until the
/// next staged change to that relation, so repeated reads inside one
/// transaction pay the merge once (the catapult BaseSetDelta/cache-delta
/// layering, SNIPPETS.md 1 & 3).
class DeltaSet {
 public:
  DeltaSet();

  /// Stages `count` copies of `row` into `relation`.
  void StageInsert(const std::string& relation, const Row& row,
                   int64_t count = 1);

  /// Stages removal of `count` copies (the caller guarantees the overlay
  /// holds at least that many, i.e. the row was read through the overlay).
  void StageDelete(const std::string& relation, const Row& row,
                   int64_t count = 1);

  /// Stages an update of `count` copies of `old_row` into `new_row` —
  /// sugar for delete(old) + insert(new), with both rows entering the write
  /// footprint.
  void StageModify(const std::string& relation, const Row& old_row,
                   const Row& new_row, int64_t count = 1);

  /// Signed staged multiplicity of `row` in `relation` (0 when untouched).
  int64_t DeltaOf(const std::string& relation, const Row& row) const;

  /// True when this set stages any change to `relation`.
  bool Touches(const std::string& relation) const;

  /// The merged read version of `relation`: the snapshot version with this
  /// set's staged delta applied. Returns the snapshot version untouched
  /// relations (no copy); nullptr when the relation exists in neither.
  /// The returned table lives until the next staged change to the relation
  /// or Clear().
  const Table* OverlayTable(const std::string& relation,
                            const Snapshot& snapshot) const;

  /// Folds the staged overlays into one concrete transaction: per relation,
  /// negative rows become deletes and positive rows inserts. Relations in
  /// deterministic (name) order; rows in deterministic (sorted) order.
  ConcreteTxn ToConcreteTxn() const;

  TxnFootprint& footprint() { return footprint_; }
  const TxnFootprint& footprint() const { return footprint_; }

  bool empty() const;
  void Clear();

 private:
  /// relation -> signed row bag (Relation reused as the signed-bag type).
  std::map<std::string, Relation> deltas_;
  TxnFootprint footprint_;
  /// Never charges: overlay reads are private bookkeeping, not modeled I/O.
  mutable PageCounter overlay_counter_;
  /// Memoized merged versions, invalidated per-relation on staging.
  mutable std::map<std::string, std::unique_ptr<Table>> merged_;
};

}  // namespace auxview

#endif  // AUXVIEW_CONCURRENCY_DELTA_SET_H_
