#include "concurrency/snapshot.h"

#include <utility>

#include "obs/metrics.h"

namespace auxview {

namespace {

obs::Gauge* PinsGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("concurrency.snapshot_pins");
  return g;
}

}  // namespace

SnapshotRef::SnapshotRef(SnapshotRef&& other) noexcept
    : manager_(other.manager_), snapshot_(std::move(other.snapshot_)) {
  other.manager_ = nullptr;
  other.snapshot_.reset();
}

SnapshotRef& SnapshotRef::operator=(SnapshotRef&& other) noexcept {
  if (this != &other) {
    Release();
    manager_ = other.manager_;
    snapshot_ = std::move(other.snapshot_);
    other.manager_ = nullptr;
    other.snapshot_.reset();
  }
  return *this;
}

SnapshotRef::~SnapshotRef() { Release(); }

void SnapshotRef::Release() {
  if (manager_ != nullptr && snapshot_ != nullptr) {
    manager_->Unpin(snapshot_->epoch());
  }
  manager_ = nullptr;
  snapshot_.reset();
}

SnapshotManager::SnapshotManager() {
  snapshot_counter_.set_enabled(false);
  current_ = std::make_shared<const Snapshot>(
      0, std::map<std::string, std::shared_ptr<const Table>>{});
}

void SnapshotManager::PublishAll(const Database& db) {
  std::map<std::string, std::shared_ptr<const Table>> tables;
  for (const std::string& name : db.TableNames()) {
    tables.emplace(name, db.FindTable(name)->Clone(&snapshot_counter_));
  }
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::make_shared<const Snapshot>(current_->epoch(),
                                              std::move(tables));
}

uint64_t SnapshotManager::Publish(const Database& db,
                                  const std::vector<std::string>& touched) {
  // Start from the previous epoch's versions; only touched tables pay for a
  // clone. Reading `db` here is safe: Publish runs under the commit lock, so
  // no commit is mutating the tables concurrently.
  std::map<std::string, std::shared_ptr<const Table>> tables;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& name : current_->TableNames()) {
      tables.emplace(name, current_->TableVersion(name));
    }
  }
  for (const std::string& name : touched) {
    const Table* live = db.FindTable(name);
    if (live == nullptr) {
      tables.erase(name);  // dropped since the last epoch
    } else {
      tables[name] = live->Clone(&snapshot_counter_);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t epoch = current_->epoch() + 1;
  current_ = std::make_shared<const Snapshot>(epoch, std::move(tables));
  return epoch;
}

SnapshotRef SnapshotManager::Pin() {
  std::lock_guard<std::mutex> lock(mu_);
  pinned_epochs_.insert(current_->epoch());
  PinsGauge()->Add(1);
  return SnapshotRef(this, current_);
}

uint64_t SnapshotManager::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->epoch();
}

uint64_t SnapshotManager::MinPinnedEpoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (pinned_epochs_.empty()) return current_->epoch();
  return *pinned_epochs_.begin();
}

void SnapshotManager::Unpin(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pinned_epochs_.find(epoch);
  if (it != pinned_epochs_.end()) pinned_epochs_.erase(it);
  PinsGauge()->Add(-1);
}

}  // namespace auxview
