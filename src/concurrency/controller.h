#ifndef AUXVIEW_CONCURRENCY_CONTROLLER_H_
#define AUXVIEW_CONCURRENCY_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "concurrency/conflict.h"
#include "concurrency/delta_set.h"
#include "concurrency/snapshot.h"
#include "delta/transaction.h"
#include "maintain/view_manager.h"
#include "optimizer/track.h"

namespace auxview {

/// What one optimistic commit attempt produced.
struct CommitOutcome {
  enum class Kind {
    kCommitted,  ///< Validated and applied; `epoch` is the published epoch.
    kConflict,   ///< First-committer-wins validation failed; retry on a
                 ///< fresh snapshot. `detail` names the conflicting row.
    kRejected,   ///< An assertion verdict aborted the transaction (the
                 ///< integrity-constraint NO, not a concurrency artifact);
                 ///< `detail` names the assertion. Retrying won't help.
  };
  Kind kind = Kind::kCommitted;
  uint64_t epoch = 0;
  std::string detail;

  bool committed() const { return kind == Kind::kCommitted; }
};

/// The commit funnel: serializes every state change to one maintained
/// Database behind a single commit mutex, so that maintenance deltas and
/// assertion verdicts are always computed against the latest committed
/// state — which is what makes committed transactions trivially
/// serializable (docs/CONCURRENCY.md).
///
/// Optimistic writers (WriterTxn / TxnSession) build their staged DeltaSet
/// against a pinned snapshot and call Commit(): under the mutex their
/// read/write footprint is validated first-committer-wins against every
/// commit newer than their snapshot; a validated delta then flows through
/// the unchanged verdict -> WAL -> undo pipeline (ViewManager), and the
/// touched tables' new versions are published as the next snapshot epoch.
///
/// The owning Session's serial DML path shares the same funnel via
/// CommitSerialLocked so ad-hoc statements, checkpoints and optimistic
/// commits never interleave.
class ConcurrencyController {
 public:
  /// Resolves the update track for a transaction type. Supplied by the
  /// Session so the optimizer's track cache is shared between the serial
  /// and optimistic paths; only ever invoked under the commit mutex (the
  /// selector is single-threaded at its costing entry points).
  using TrackFn = std::function<StatusOr<UpdateTrack>(const TransactionType&)>;

  /// Publishes the initial snapshot (epoch 0) of `db`. All pointers must
  /// outlive the controller.
  ConcurrencyController(const Catalog* catalog, Database* db,
                        ViewManager* manager,
                        std::vector<TransactionType> workload,
                        TrackFn track_fn);

  ConcurrencyController(const ConcurrencyController&) = delete;
  ConcurrencyController& operator=(const ConcurrencyController&) = delete;

  /// Pins the latest published snapshot (any thread).
  SnapshotRef Pin() { return snapshots_.Pin(); }

  uint64_t current_epoch() const { return snapshots_.current_epoch(); }

  /// One optimistic commit attempt for a writer whose staged changes are
  /// `delta` and whose snapshot is `snapshot_epoch`. Takes the commit
  /// mutex; validates, maintains, publishes. A Status error means the
  /// pipeline itself failed (I/O, injected fault) — the transaction was
  /// rolled back and the writer may retry or surface the error.
  StatusOr<CommitOutcome> Commit(const DeltaSet& delta,
                                 uint64_t snapshot_epoch);

  /// The Session's serial path: applies an already-built concrete
  /// transaction through the same funnel (no validation — the caller read
  /// the live committed state under this same mutex). The caller must hold
  /// commit_mutex(). Publishes and records the commit footprint so
  /// concurrent optimistic writers validate against serial DML too.
  /// kConflict never occurs; kRejected carries the violated assertion.
  StatusOr<CommitOutcome> CommitSerialLocked(const ConcreteTxn& txn,
                                             const TransactionType& type,
                                             const UpdateTrack& track);

  /// The funnel's mutex — held by the Session around serial DML (statement
  /// build + CommitSerialLocked) and Checkpoint.
  std::mutex& commit_mutex() { return commit_mu_; }

  /// Retained conflict-history length (tests, shell `.session` status).
  size_t history_size() const { return tracker_.history_size(); }

 private:
  /// Shared tail of both commit paths, under commit_mu_: ApplyTransaction,
  /// classify the outcome, publish the new epoch, record + prune the
  /// conflict history.
  StatusOr<CommitOutcome> ApplyAndPublish(
      const ConcreteTxn& txn, const TransactionType& type,
      const UpdateTrack& track,
      const std::map<std::string, TxnFootprint::RowSet>& writes);

  const Catalog* catalog_;
  Database* db_;
  ViewManager* manager_;
  std::vector<TransactionType> workload_;
  TrackFn track_fn_;

  std::mutex commit_mu_;
  SnapshotManager snapshots_;
  ConflictTracker tracker_;
};

}  // namespace auxview

#endif  // AUXVIEW_CONCURRENCY_CONTROLLER_H_
