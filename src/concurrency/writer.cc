#include "concurrency/writer.h"

#include <utility>

#include "obs/metrics.h"

namespace auxview {

namespace {

obs::Counter* RetriesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("concurrency.retries");
  return c;
}

}  // namespace

WriterTxn::WriterTxn(ConcurrencyController* controller)
    : controller_(controller), snapshot_(controller->Pin()) {}

const Table* WriterTxn::ResolveTable(const std::string& name) const {
  return delta_.OverlayTable(name, *snapshot_);
}

StatusOr<const Table*> WriterTxn::Overlay(const std::string& relation) const {
  const Table* table = delta_.OverlayTable(relation, *snapshot_);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + relation);
  }
  return table;
}

StatusOr<std::vector<CountedRow>> WriterTxn::Scan(const std::string& relation) {
  AUXVIEW_ASSIGN_OR_RETURN(const Table* table, Overlay(relation));
  delta_.footprint().AddScanRead(relation);
  return table->SnapshotUncharged();
}

StatusOr<std::vector<CountedRow>> WriterTxn::LookupEq(
    const std::string& relation, const std::vector<std::string>& attrs,
    const Row& key) {
  AUXVIEW_ASSIGN_OR_RETURN(const Table* table, Overlay(relation));
  if (attrs.size() != key.size()) {
    return Status::InvalidArgument("LookupEq attrs/key arity mismatch");
  }
  std::vector<std::pair<int, Value>> equalities;
  for (size_t i = 0; i < attrs.size(); ++i) {
    const int col = table->schema().IndexOf(attrs[i]);
    if (col < 0) {
      return Status::InvalidArgument("unknown column: " + attrs[i]);
    }
    equalities.emplace_back(col, key[i]);
  }
  delta_.footprint().AddKeyRead(relation, std::move(equalities));
  return table->Lookup(attrs, key);
}

Status WriterTxn::Insert(const std::string& relation, const Row& row,
                         int64_t count) {
  if (count <= 0) return Status::InvalidArgument("insert count must be > 0");
  AUXVIEW_ASSIGN_OR_RETURN(const Table* table, Overlay(relation));
  if (static_cast<int>(row.size()) != table->schema().num_columns()) {
    return Status::InvalidArgument("insert arity mismatch for " + relation);
  }
  delta_.StageInsert(relation, row, count);
  return Status::Ok();
}

Status WriterTxn::Delete(const std::string& relation, const Row& row,
                         int64_t count) {
  if (count <= 0) return Status::InvalidArgument("delete count must be > 0");
  AUXVIEW_ASSIGN_OR_RETURN(const Table* table, Overlay(relation));
  if (table->CountOf(row) < count) {
    return Status::InvalidArgument("delete of " + RowToString(row) + " from " +
                                   relation +
                                   " exceeds its visible multiplicity");
  }
  delta_.StageDelete(relation, row, count);
  return Status::Ok();
}

Status WriterTxn::Modify(const std::string& relation, const Row& old_row,
                         const Row& new_row, int64_t count) {
  if (count <= 0) return Status::InvalidArgument("modify count must be > 0");
  AUXVIEW_ASSIGN_OR_RETURN(const Table* table, Overlay(relation));
  if (table->CountOf(old_row) < count) {
    return Status::InvalidArgument("modify of " + RowToString(old_row) +
                                   " in " + relation +
                                   " exceeds its visible multiplicity");
  }
  if (static_cast<int>(new_row.size()) != table->schema().num_columns()) {
    return Status::InvalidArgument("modify arity mismatch for " + relation);
  }
  delta_.StageModify(relation, old_row, new_row, count);
  return Status::Ok();
}

StatusOr<CommitOutcome> WriterTxn::Commit() {
  AUXVIEW_ASSIGN_OR_RETURN(CommitOutcome outcome,
                           controller_->Commit(delta_, snapshot_.epoch()));
  if (outcome.committed()) {
    delta_.Clear();
    snapshot_ = controller_->Pin();
  }
  return outcome;
}

void WriterTxn::Abort() {
  delta_.Clear();
  snapshot_ = controller_->Pin();
}

void WriterTxn::Restart() {
  RetriesCounter()->Add(1);
  Abort();
}

}  // namespace auxview
