#include "concurrency/controller.h"

#include <utility>

#include "obs/metrics.h"

namespace auxview {

namespace {

obs::Counter* CommitsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("concurrency.commits");
  return c;
}

obs::Counter* ConflictsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("concurrency.conflicts");
  return c;
}

/// The write footprint of an already-built concrete transaction (the serial
/// path has no DeltaSet): every inserted row, deleted row, and both halves
/// of each modify.
std::map<std::string, TxnFootprint::RowSet> WritesOf(const ConcreteTxn& txn) {
  std::map<std::string, TxnFootprint::RowSet> writes;
  for (const TableUpdate& u : txn.updates) {
    TxnFootprint::RowSet& rows = writes[u.relation];
    for (const auto& [row, count] : u.inserts) rows.insert(row);
    for (const auto& [row, count] : u.deletes) rows.insert(row);
    for (const auto& [old_row, new_row] : u.modifies) {
      rows.insert(old_row);
      rows.insert(new_row);
    }
  }
  return writes;
}

}  // namespace

ConcurrencyController::ConcurrencyController(
    const Catalog* catalog, Database* db, ViewManager* manager,
    std::vector<TransactionType> workload, TrackFn track_fn)
    : catalog_(catalog),
      db_(db),
      manager_(manager),
      workload_(std::move(workload)),
      track_fn_(std::move(track_fn)) {
  snapshots_.PublishAll(*db_);
}

StatusOr<CommitOutcome> ConcurrencyController::Commit(
    const DeltaSet& delta, uint64_t snapshot_epoch) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (std::optional<std::string> conflict =
          tracker_.Validate(delta.footprint(), snapshot_epoch)) {
    ConflictsCounter()->Add(1);
    return CommitOutcome{CommitOutcome::Kind::kConflict,
                         snapshots_.current_epoch(), *std::move(conflict)};
  }
  ConcreteTxn txn = delta.ToConcreteTxn();
  if (txn.updates.empty()) {
    // A read-only transaction that validated clean: nothing to apply or
    // publish, and nothing for later writers to conflict with.
    CommitsCounter()->Add(1);
    return CommitOutcome{CommitOutcome::Kind::kCommitted,
                         snapshots_.current_epoch(), ""};
  }
  const TransactionType type = DeriveTransactionType(txn, workload_, *catalog_);
  txn.type_name = type.name;
  AUXVIEW_ASSIGN_OR_RETURN(UpdateTrack track, track_fn_(type));
  return ApplyAndPublish(txn, type, track, delta.footprint().writes);
}

StatusOr<CommitOutcome> ConcurrencyController::CommitSerialLocked(
    const ConcreteTxn& txn, const TransactionType& type,
    const UpdateTrack& track) {
  return ApplyAndPublish(txn, type, track, WritesOf(txn));
}

StatusOr<CommitOutcome> ConcurrencyController::ApplyAndPublish(
    const ConcreteTxn& txn, const TransactionType& type,
    const UpdateTrack& track,
    const std::map<std::string, TxnFootprint::RowSet>& writes) {
  const Status applied = manager_->ApplyTransaction(txn, type, track);
  if (!applied.ok()) {
    if (applied.code() == StatusCode::kAborted &&
        !manager_->aborted_assertion().empty()) {
      return CommitOutcome{CommitOutcome::Kind::kRejected,
                           snapshots_.current_epoch(),
                           manager_->aborted_assertion()};
    }
    return applied;  // injected fault or genuine error — rolled back
  }
  const uint64_t epoch = snapshots_.Publish(*db_, manager_->last_commit_tables());
  tracker_.RecordCommit(epoch, writes, manager_->last_commit_tables());
  tracker_.PruneThrough(snapshots_.MinPinnedEpoch());
  CommitsCounter()->Add(1);
  return CommitOutcome{CommitOutcome::Kind::kCommitted, epoch, ""};
}

}  // namespace auxview
