#include "algebra/expr.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace auxview {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kScan:
      return "Scan";
    case OpKind::kSelect:
      return "Select";
    case OpKind::kProject:
      return "Project";
    case OpKind::kJoin:
      return "Join";
    case OpKind::kAggregate:
      return "Aggregate";
    case OpKind::kDupElim:
      return "DupElim";
  }
  return "?";
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

std::string AggSpec::ToString() const {
  std::string out = AggFuncName(func);
  out += "(";
  out += arg == nullptr ? "*" : arg->ToString();
  out += ") AS ";
  out += output_name;
  return out;
}

Expr::Ptr Expr::Scan(std::string table, Schema schema) {
  auto e = std::shared_ptr<Expr>(
      new Expr(OpKind::kScan, std::move(schema), {}));
  e->table_ = std::move(table);
  return e;
}

StatusOr<Expr::Ptr> Expr::Select(Ptr child, Scalar::Ptr predicate) {
  if (child == nullptr || predicate == nullptr) {
    return Status::InvalidArgument("Select requires child and predicate");
  }
  // Validate the predicate's columns against the child schema.
  for (const std::string& col : predicate->Columns()) {
    if (!child->output_schema().Contains(col)) {
      return Status::InvalidArgument("Select predicate references unknown column: " +
                                     col);
    }
  }
  Schema schema = child->output_schema();
  auto e = std::shared_ptr<Expr>(
      new Expr(OpKind::kSelect, std::move(schema), {std::move(child)}));
  e->predicate_ = std::move(predicate);
  return Ptr(e);
}

StatusOr<Expr::Ptr> Expr::Project(Ptr child, std::vector<ProjectItem> items) {
  if (child == nullptr || items.empty()) {
    return Status::InvalidArgument("Project requires child and items");
  }
  std::vector<Column> cols;
  for (const ProjectItem& item : items) {
    if (item.expr == nullptr) {
      return Status::InvalidArgument("Project item has null expression");
    }
    AUXVIEW_ASSIGN_OR_RETURN(ValueType type,
                             item.expr->InferType(child->output_schema()));
    cols.push_back(Column{item.name, type});
  }
  AUXVIEW_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(cols)));
  auto e = std::shared_ptr<Expr>(
      new Expr(OpKind::kProject, std::move(schema), {std::move(child)}));
  e->projections_ = std::move(items);
  return Ptr(e);
}

StatusOr<Expr::Ptr> Expr::Join(Ptr left, Ptr right,
                               std::vector<std::string> join_attrs) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("Join requires two children");
  }
  if (join_attrs.empty()) {
    return Status::InvalidArgument("Join requires at least one join attribute");
  }
  const Schema& ls = left->output_schema();
  const Schema& rs = right->output_schema();
  for (const std::string& a : join_attrs) {
    const int li = ls.IndexOf(a);
    const int ri = rs.IndexOf(a);
    if (li < 0 || ri < 0) {
      return Status::InvalidArgument("join attribute missing from an input: " +
                                     a);
    }
    if (ls.column(li).type != rs.column(ri).type) {
      return Status::InvalidArgument("join attribute type mismatch: " + a);
    }
  }
  // Every shared column name must be a join attribute (keeps derived schemas
  // duplicate-free, natural-join style).
  for (const Column& rc : rs.columns()) {
    if (ls.Contains(rc.name) &&
        std::find(join_attrs.begin(), join_attrs.end(), rc.name) ==
            join_attrs.end()) {
      return Status::InvalidArgument(
          "column shared by both join inputs must be a join attribute: " +
          rc.name);
    }
  }
  // Canonical attribute order for signatures.
  std::sort(join_attrs.begin(), join_attrs.end());
  std::vector<Column> cols = ls.columns();
  for (const Column& rc : rs.columns()) {
    if (std::find(join_attrs.begin(), join_attrs.end(), rc.name) ==
        join_attrs.end()) {
      cols.push_back(rc);
    }
  }
  AUXVIEW_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(cols)));
  auto e = std::shared_ptr<Expr>(new Expr(
      OpKind::kJoin, std::move(schema), {std::move(left), std::move(right)}));
  e->join_attrs_ = std::move(join_attrs);
  return Ptr(e);
}

StatusOr<Expr::Ptr> Expr::Aggregate(Ptr child,
                                    std::vector<std::string> group_by,
                                    std::vector<AggSpec> aggs) {
  if (child == nullptr) {
    return Status::InvalidArgument("Aggregate requires a child");
  }
  if (aggs.empty()) {
    return Status::InvalidArgument("Aggregate requires at least one aggregate");
  }
  const Schema& cs = child->output_schema();
  std::vector<Column> cols;
  for (const std::string& g : group_by) {
    const int i = cs.IndexOf(g);
    if (i < 0) {
      return Status::InvalidArgument("group-by column missing: " + g);
    }
    cols.push_back(cs.column(i));
  }
  for (const AggSpec& agg : aggs) {
    ValueType type = ValueType::kInt64;
    if (agg.func == AggFunc::kCount) {
      type = ValueType::kInt64;
    } else {
      if (agg.arg == nullptr) {
        return Status::InvalidArgument("aggregate requires an argument: " +
                                       agg.ToString());
      }
      AUXVIEW_ASSIGN_OR_RETURN(ValueType arg_type, agg.arg->InferType(cs));
      type = agg.func == AggFunc::kAvg ? ValueType::kDouble : arg_type;
    }
    cols.push_back(Column{agg.output_name, type});
  }
  AUXVIEW_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(cols)));
  auto e = std::shared_ptr<Expr>(
      new Expr(OpKind::kAggregate, std::move(schema), {std::move(child)}));
  e->group_by_ = std::move(group_by);
  e->aggs_ = std::move(aggs);
  return Ptr(e);
}

StatusOr<Expr::Ptr> Expr::DupElim(Ptr child) {
  if (child == nullptr) {
    return Status::InvalidArgument("DupElim requires a child");
  }
  Schema schema = child->output_schema();
  return Ptr(std::shared_ptr<Expr>(
      new Expr(OpKind::kDupElim, std::move(schema), {std::move(child)})));
}

StatusOr<Expr::Ptr> Expr::WithChildren(std::vector<Ptr> children) const {
  switch (kind_) {
    case OpKind::kScan:
      return Status::InvalidArgument("Scan has no children");
    case OpKind::kSelect:
      if (children.size() != 1) {
        return Status::InvalidArgument("Select takes one child");
      }
      return Select(children[0], predicate_);
    case OpKind::kProject:
      if (children.size() != 1) {
        return Status::InvalidArgument("Project takes one child");
      }
      return Project(children[0], projections_);
    case OpKind::kJoin:
      if (children.size() != 2) {
        return Status::InvalidArgument("Join takes two children");
      }
      return Join(children[0], children[1], join_attrs_);
    case OpKind::kAggregate:
      if (children.size() != 1) {
        return Status::InvalidArgument("Aggregate takes one child");
      }
      return Aggregate(children[0], group_by_, aggs_);
    case OpKind::kDupElim:
      if (children.size() != 1) {
        return Status::InvalidArgument("DupElim takes one child");
      }
      return DupElim(children[0]);
  }
  return Status::Internal("unhandled op kind");
}

std::string Expr::LocalToString() const {
  switch (kind_) {
    case OpKind::kScan:
      return table_;
    case OpKind::kSelect:
      return std::string("Select (") + predicate_->ToString() + ")";
    case OpKind::kProject: {
      std::vector<std::string> parts;
      for (const ProjectItem& item : projections_) {
        parts.push_back(item.expr->ToString() + " AS " + item.name);
      }
      return "Project (" + ::auxview::Join(parts, ", ") + ")";
    }
    case OpKind::kJoin:
      return "Join (" + ::auxview::Join(join_attrs_, ", ") + ")";
    case OpKind::kAggregate: {
      std::vector<std::string> parts;
      for (const AggSpec& agg : aggs_) parts.push_back(agg.ToString());
      std::string out = "Aggregate (" + ::auxview::Join(parts, ", ");
      if (!group_by_.empty()) out += " BY " + ::auxview::Join(group_by_, ", ");
      out += ")";
      return out;
    }
    case OpKind::kDupElim:
      return "DupElim";
  }
  return "?";
}

std::string Expr::LocalSignature() const {
  // LocalToString is canonical for parameters: join attrs are sorted at
  // construction, scalar ToString is canonical, group-by/agg order is
  // semantically significant for the output schema.
  return std::string(OpKindName(kind_)) + "|" + LocalToString();
}

std::string Expr::TreeSignature() const {
  std::string out = LocalSignature();
  if (!children_.empty()) {
    out += "[";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) out += ";";
      out += children_[i]->TreeSignature();
    }
    out += "]";
  }
  return out;
}

void Expr::TreeToStringImpl(int indent, std::string* out) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(LocalToString());
  out->append("\n");
  for (const Ptr& c : children_) c->TreeToStringImpl(indent + 1, out);
}

std::string Expr::TreeToString() const {
  std::string out;
  TreeToStringImpl(0, &out);
  return out;
}

std::set<std::string> Expr::BaseRelations() const {
  std::set<std::string> out;
  if (kind_ == OpKind::kScan) {
    out.insert(table_);
    return out;
  }
  for (const Ptr& c : children_) {
    for (const std::string& r : c->BaseRelations()) out.insert(r);
  }
  return out;
}

}  // namespace auxview
