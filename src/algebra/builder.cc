#include "algebra/builder.h"

namespace auxview {

Scalar::Ptr Col(const std::string& name) { return Scalar::Column(name); }
Scalar::Ptr Lit(int64_t v) { return Scalar::Literal(Value::Int64(v)); }
Scalar::Ptr Lit(double v) { return Scalar::Literal(Value::Double(v)); }
Scalar::Ptr Lit(const char* v) { return Scalar::Literal(Value::String(v)); }
Scalar::Ptr Lit(const std::string& v) {
  return Scalar::Literal(Value::String(v));
}

Expr::Ptr ExprBuilder::Scan(const std::string& table) {
  const TableDef* def = catalog_->FindTable(table);
  if (def == nullptr) {
    if (status_.ok()) status_ = Status::NotFound("no such table: " + table);
    return nullptr;
  }
  return Expr::Scan(table, def->schema);
}

Expr::Ptr ExprBuilder::Select(Expr::Ptr child, Scalar::Ptr predicate) {
  if (child == nullptr) return nullptr;
  return Record(Expr::Select(std::move(child), std::move(predicate)));
}

Expr::Ptr ExprBuilder::Project(Expr::Ptr child,
                               std::vector<ProjectItem> items) {
  if (child == nullptr) return nullptr;
  return Record(Expr::Project(std::move(child), std::move(items)));
}

Expr::Ptr ExprBuilder::Join(Expr::Ptr left, Expr::Ptr right,
                            std::vector<std::string> join_attrs) {
  if (left == nullptr || right == nullptr) return nullptr;
  return Record(
      Expr::Join(std::move(left), std::move(right), std::move(join_attrs)));
}

Expr::Ptr ExprBuilder::Aggregate(Expr::Ptr child,
                                 std::vector<std::string> group_by,
                                 std::vector<AggSpec> aggs) {
  if (child == nullptr) return nullptr;
  return Record(
      Expr::Aggregate(std::move(child), std::move(group_by), std::move(aggs)));
}

Expr::Ptr ExprBuilder::DupElim(Expr::Ptr child) {
  if (child == nullptr) return nullptr;
  return Record(Expr::DupElim(std::move(child)));
}

StatusOr<Expr::Ptr> ExprBuilder::Take(Expr::Ptr root) {
  if (!status_.ok()) return status_;
  if (root == nullptr) return Status::Internal("builder produced null tree");
  return root;
}

}  // namespace auxview
