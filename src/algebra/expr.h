#ifndef AUXVIEW_ALGEBRA_EXPR_H_
#define AUXVIEW_ALGEBRA_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "algebra/scalar.h"
#include "catalog/schema.h"
#include "common/status.h"

namespace auxview {

/// Logical operator kinds. The language matches the paper's scope: SPJ with
/// grouping/aggregation and duplicate elimination, bag semantics.
enum class OpKind {
  kScan,
  kSelect,
  kProject,
  kJoin,
  kAggregate,
  kDupElim,
};

const char* OpKindName(OpKind kind);

/// Aggregate functions.
enum class AggFunc { kSum, kCount, kMin, kMax, kAvg };

const char* AggFuncName(AggFunc func);

/// One aggregate in a grouping operator: FUNC(arg) AS output_name.
/// `arg` is null for COUNT(*).
struct AggSpec {
  AggFunc func = AggFunc::kSum;
  Scalar::Ptr arg;
  std::string output_name;

  std::string ToString() const;
};

/// One computed output column of a Project: expr AS name.
struct ProjectItem {
  Scalar::Ptr expr;
  std::string name;
};

/// An immutable logical algebra expression tree.
///
/// Joins are natural-style equi-joins on a named attribute list: the join
/// attributes must appear in both inputs (with matching types) and are merged
/// in the output, matching the paper's `Join (DName)` notation. Any column
/// name shared by both inputs must be a join attribute, which keeps derived
/// schemas free of duplicate names.
class Expr {
 public:
  using Ptr = std::shared_ptr<const Expr>;

  /// Leaf scan of a base relation with the given schema.
  static Ptr Scan(std::string table, Schema schema);

  static StatusOr<Ptr> Select(Ptr child, Scalar::Ptr predicate);
  static StatusOr<Ptr> Project(Ptr child, std::vector<ProjectItem> items);
  static StatusOr<Ptr> Join(Ptr left, Ptr right,
                            std::vector<std::string> join_attrs);
  static StatusOr<Ptr> Aggregate(Ptr child, std::vector<std::string> group_by,
                                 std::vector<AggSpec> aggs);
  static StatusOr<Ptr> DupElim(Ptr child);

  OpKind kind() const { return kind_; }
  const Schema& output_schema() const { return output_schema_; }
  const std::vector<Ptr>& children() const { return children_; }
  const Ptr& child(int i) const { return children_[i]; }
  int num_children() const { return static_cast<int>(children_.size()); }

  // Kind-specific accessors (valid only for the matching kind).
  const std::string& table() const { return table_; }
  const Scalar::Ptr& predicate() const { return predicate_; }
  const std::vector<ProjectItem>& projections() const { return projections_; }
  const std::vector<std::string>& join_attrs() const { return join_attrs_; }
  const std::vector<std::string>& group_by() const { return group_by_; }
  const std::vector<AggSpec>& aggs() const { return aggs_; }

  /// Rebuilds this operator over new inputs (same parameters).
  StatusOr<Ptr> WithChildren(std::vector<Ptr> children) const;

  /// Canonical one-line description of this operator alone, e.g.
  /// "Join (DName)" or "Aggregate (SUM(Salary) BY DName, Budget)".
  std::string LocalToString() const;

  /// Canonical signature of the operator's parameters, excluding children.
  /// Used by the memo to deduplicate operation nodes.
  std::string LocalSignature() const;

  /// Canonical signature of the whole tree.
  std::string TreeSignature() const;

  /// Multi-line indented tree rendering (Figure 1-style output).
  std::string TreeToString() const;

  /// Names of base relations scanned anywhere in the tree.
  std::set<std::string> BaseRelations() const;

 private:
  Expr(OpKind kind, Schema schema, std::vector<Ptr> children)
      : kind_(kind),
        output_schema_(std::move(schema)),
        children_(std::move(children)) {}

  void TreeToStringImpl(int indent, std::string* out) const;

  OpKind kind_;
  Schema output_schema_;
  std::vector<Ptr> children_;

  std::string table_;
  Scalar::Ptr predicate_;
  std::vector<ProjectItem> projections_;
  std::vector<std::string> join_attrs_;
  std::vector<std::string> group_by_;
  std::vector<AggSpec> aggs_;
};

}  // namespace auxview

#endif  // AUXVIEW_ALGEBRA_EXPR_H_
