#ifndef AUXVIEW_ALGEBRA_BUILDER_H_
#define AUXVIEW_ALGEBRA_BUILDER_H_

#include <string>
#include <vector>

#include "algebra/expr.h"
#include "catalog/catalog.h"

namespace auxview {

/// Shorthand scalar constructors for building predicates in user code:
///   Col("Salary"), Lit(1000), Gt(Col("SumSal"), Col("Budget")).
Scalar::Ptr Col(const std::string& name);
Scalar::Ptr Lit(int64_t v);
Scalar::Ptr Lit(double v);
Scalar::Ptr Lit(const char* v);
Scalar::Ptr Lit(const std::string& v);

/// Catalog-aware convenience builder for algebra trees.
///
/// Example (the paper's ProblemDept view, Figure 1 left tree):
///
///   ExprBuilder b(&catalog);
///   auto tree = b.Aggregate(
///       b.Join(b.Scan("Emp"), b.Scan("Dept"), {"DName"}),
///       {"DName", "Budget"},
///       {{AggFunc::kSum, Col("Salary"), "SumSal"}});
///   tree = b.Select(tree, Scalar::Gt(Col("SumSal"), Col("Budget")));
///
/// Builder methods propagate the first error encountered; call Take(expr)
/// or check ok() at the end.
class ExprBuilder {
 public:
  explicit ExprBuilder(const Catalog* catalog) : catalog_(catalog) {}

  /// Scans a base relation registered in the catalog (nullptr on error).
  Expr::Ptr Scan(const std::string& table);

  Expr::Ptr Select(Expr::Ptr child, Scalar::Ptr predicate);
  Expr::Ptr Project(Expr::Ptr child, std::vector<ProjectItem> items);
  Expr::Ptr Join(Expr::Ptr left, Expr::Ptr right,
                 std::vector<std::string> join_attrs);
  Expr::Ptr Aggregate(Expr::Ptr child, std::vector<std::string> group_by,
                      std::vector<AggSpec> aggs);
  Expr::Ptr DupElim(Expr::Ptr child);

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the finished tree, or the first recorded error.
  StatusOr<Expr::Ptr> Take(Expr::Ptr root);

 private:
  template <typename SO>
  Expr::Ptr Record(SO result) {
    if (!result.ok()) {
      if (status_.ok()) status_ = result.status();
      return nullptr;
    }
    return std::move(result).value();
  }

  const Catalog* catalog_;
  Status status_;
};

}  // namespace auxview

#endif  // AUXVIEW_ALGEBRA_BUILDER_H_
