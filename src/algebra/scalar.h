#ifndef AUXVIEW_ALGEBRA_SCALAR_H_
#define AUXVIEW_ALGEBRA_SCALAR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace auxview {

/// Scalar expression node kinds.
enum class ScalarOp {
  kColumn,
  kLiteral,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
};

const char* ScalarOpName(ScalarOp op);

/// An immutable scalar expression tree over named columns.
///
/// Scalars appear in selection/having predicates, generalized projections and
/// aggregate arguments (e.g. `SUM(S.Quantity * T.Price)` from the paper's
/// Figure 5).
class Scalar {
 public:
  using Ptr = std::shared_ptr<const Scalar>;

  static Ptr Column(std::string name);
  static Ptr Literal(Value value);
  static Ptr Binary(ScalarOp op, Ptr lhs, Ptr rhs);
  static Ptr Not(Ptr child);

  // Convenience constructors.
  static Ptr Eq(Ptr l, Ptr r) { return Binary(ScalarOp::kEq, l, r); }
  static Ptr Gt(Ptr l, Ptr r) { return Binary(ScalarOp::kGt, l, r); }
  static Ptr Lt(Ptr l, Ptr r) { return Binary(ScalarOp::kLt, l, r); }
  static Ptr And(Ptr l, Ptr r) { return Binary(ScalarOp::kAnd, l, r); }
  static Ptr Mul(Ptr l, Ptr r) { return Binary(ScalarOp::kMul, l, r); }

  ScalarOp op() const { return op_; }
  const std::string& column_name() const { return column_; }
  const Value& literal() const { return literal_; }
  const std::vector<Ptr>& children() const { return children_; }

  /// Evaluates against `row` with layout `schema`. Comparison/logic yield
  /// Bool; arithmetic yields Int64 when both operands are Int64, else Double.
  /// NULL operands propagate to NULL (SQL three-valued-ish: NULL predicate
  /// counts as not satisfied).
  StatusOr<Value> Eval(const Row& row, const Schema& schema) const;

  /// Inserts every referenced column name into `out`.
  void CollectColumns(std::set<std::string>* out) const;

  /// Column names referenced by this expression.
  std::set<std::string> Columns() const;

  /// Result type under `schema`.
  StatusOr<ValueType> InferType(const Schema& schema) const;

  /// Canonical rendering; equal strings <=> structurally equal expressions.
  std::string ToString() const;

  bool Equals(const Scalar& other) const;

  /// Splits a conjunctive predicate into its conjuncts (flattens AND).
  static void SplitConjuncts(const Ptr& pred, std::vector<Ptr>* out);

  /// Rebuilds a conjunction from `conjuncts` (nullptr for empty).
  static Ptr CombineConjuncts(const std::vector<Ptr>& conjuncts);

 private:
  Scalar(ScalarOp op, std::string column, Value literal,
         std::vector<Ptr> children)
      : op_(op),
        column_(std::move(column)),
        literal_(std::move(literal)),
        children_(std::move(children)) {}

  ScalarOp op_;
  std::string column_;
  Value literal_;
  std::vector<Ptr> children_;
};

}  // namespace auxview

#endif  // AUXVIEW_ALGEBRA_SCALAR_H_
