#include "algebra/scalar.h"

#include <cmath>

#include "common/check.h"

namespace auxview {

const char* ScalarOpName(ScalarOp op) {
  switch (op) {
    case ScalarOp::kColumn:
      return "col";
    case ScalarOp::kLiteral:
      return "lit";
    case ScalarOp::kAdd:
      return "+";
    case ScalarOp::kSub:
      return "-";
    case ScalarOp::kMul:
      return "*";
    case ScalarOp::kDiv:
      return "/";
    case ScalarOp::kEq:
      return "=";
    case ScalarOp::kNe:
      return "<>";
    case ScalarOp::kLt:
      return "<";
    case ScalarOp::kLe:
      return "<=";
    case ScalarOp::kGt:
      return ">";
    case ScalarOp::kGe:
      return ">=";
    case ScalarOp::kAnd:
      return "AND";
    case ScalarOp::kOr:
      return "OR";
    case ScalarOp::kNot:
      return "NOT";
  }
  return "?";
}

Scalar::Ptr Scalar::Column(std::string name) {
  return Ptr(new Scalar(ScalarOp::kColumn, std::move(name), Value::Null(), {}));
}

Scalar::Ptr Scalar::Literal(Value value) {
  return Ptr(new Scalar(ScalarOp::kLiteral, "", std::move(value), {}));
}

Scalar::Ptr Scalar::Binary(ScalarOp op, Ptr lhs, Ptr rhs) {
  AUXVIEW_CHECK(lhs != nullptr && rhs != nullptr);
  return Ptr(new Scalar(op, "", Value::Null(), {std::move(lhs), std::move(rhs)}));
}

Scalar::Ptr Scalar::Not(Ptr child) {
  AUXVIEW_CHECK(child != nullptr);
  return Ptr(new Scalar(ScalarOp::kNot, "", Value::Null(), {std::move(child)}));
}

namespace {

bool IsComparison(ScalarOp op) {
  switch (op) {
    case ScalarOp::kEq:
    case ScalarOp::kNe:
    case ScalarOp::kLt:
    case ScalarOp::kLe:
    case ScalarOp::kGt:
    case ScalarOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArithmetic(ScalarOp op) {
  switch (op) {
    case ScalarOp::kAdd:
    case ScalarOp::kSub:
    case ScalarOp::kMul:
    case ScalarOp::kDiv:
      return true;
    default:
      return false;
  }
}

}  // namespace

StatusOr<Value> Scalar::Eval(const Row& row, const Schema& schema) const {
  switch (op_) {
    case ScalarOp::kColumn: {
      const int idx = schema.IndexOf(column_);
      if (idx < 0) {
        return Status::InvalidArgument("unknown column in expression: " +
                                       column_ + " (schema: " +
                                       schema.ToString() + ")");
      }
      return row[idx];
    }
    case ScalarOp::kLiteral:
      return literal_;
    case ScalarOp::kNot: {
      AUXVIEW_ASSIGN_OR_RETURN(Value v, children_[0]->Eval(row, schema));
      if (v.is_null()) return Value::Null();
      return Value::Bool(!v.boolean());
    }
    default:
      break;
  }
  AUXVIEW_ASSIGN_OR_RETURN(Value l, children_[0]->Eval(row, schema));
  AUXVIEW_ASSIGN_OR_RETURN(Value r, children_[1]->Eval(row, schema));
  if (op_ == ScalarOp::kAnd || op_ == ScalarOp::kOr) {
    if (l.is_null() || r.is_null()) return Value::Null();
    const bool lb = l.boolean();
    const bool rb = r.boolean();
    return Value::Bool(op_ == ScalarOp::kAnd ? (lb && rb) : (lb || rb));
  }
  if (l.is_null() || r.is_null()) return Value::Null();
  if (IsComparison(op_)) {
    const int c = l.Compare(r);
    switch (op_) {
      case ScalarOp::kEq:
        return Value::Bool(c == 0);
      case ScalarOp::kNe:
        return Value::Bool(c != 0);
      case ScalarOp::kLt:
        return Value::Bool(c < 0);
      case ScalarOp::kLe:
        return Value::Bool(c <= 0);
      case ScalarOp::kGt:
        return Value::Bool(c > 0);
      case ScalarOp::kGe:
        return Value::Bool(c >= 0);
      default:
        break;
    }
  }
  if (IsArithmetic(op_)) {
    if (!l.is_numeric() || !r.is_numeric()) {
      return Status::InvalidArgument("arithmetic on non-numeric values");
    }
    const bool both_int =
        l.type() == ValueType::kInt64 && r.type() == ValueType::kInt64;
    if (both_int && op_ != ScalarOp::kDiv) {
      const int64_t a = l.int64();
      const int64_t b = r.int64();
      switch (op_) {
        case ScalarOp::kAdd:
          return Value::Int64(a + b);
        case ScalarOp::kSub:
          return Value::Int64(a - b);
        case ScalarOp::kMul:
          return Value::Int64(a * b);
        default:
          break;
      }
    }
    const double a = l.AsDouble();
    const double b = r.AsDouble();
    switch (op_) {
      case ScalarOp::kAdd:
        return Value::Double(a + b);
      case ScalarOp::kSub:
        return Value::Double(a - b);
      case ScalarOp::kMul:
        return Value::Double(a * b);
      case ScalarOp::kDiv:
        if (b == 0) return Value::Null();
        return Value::Double(a / b);
      default:
        break;
    }
  }
  return Status::Internal("unhandled scalar op");
}

void Scalar::CollectColumns(std::set<std::string>* out) const {
  if (op_ == ScalarOp::kColumn) {
    out->insert(column_);
    return;
  }
  for (const Ptr& c : children_) c->CollectColumns(out);
}

std::set<std::string> Scalar::Columns() const {
  std::set<std::string> out;
  CollectColumns(&out);
  return out;
}

StatusOr<ValueType> Scalar::InferType(const Schema& schema) const {
  switch (op_) {
    case ScalarOp::kColumn: {
      const int idx = schema.IndexOf(column_);
      if (idx < 0) {
        return Status::InvalidArgument("unknown column: " + column_);
      }
      return schema.column(idx).type;
    }
    case ScalarOp::kLiteral:
      return literal_.type();
    case ScalarOp::kNot:
      return ValueType::kBool;
    default:
      break;
  }
  if (IsComparison(op_) || op_ == ScalarOp::kAnd || op_ == ScalarOp::kOr) {
    return ValueType::kBool;
  }
  AUXVIEW_ASSIGN_OR_RETURN(ValueType lt, children_[0]->InferType(schema));
  AUXVIEW_ASSIGN_OR_RETURN(ValueType rt, children_[1]->InferType(schema));
  if (op_ == ScalarOp::kDiv) return ValueType::kDouble;
  if (lt == ValueType::kInt64 && rt == ValueType::kInt64) {
    return ValueType::kInt64;
  }
  return ValueType::kDouble;
}

std::string Scalar::ToString() const {
  switch (op_) {
    case ScalarOp::kColumn:
      return column_;
    case ScalarOp::kLiteral:
      return literal_.ToString();
    case ScalarOp::kNot:
      return std::string("NOT (") + children_[0]->ToString() + ")";
    default:
      return "(" + children_[0]->ToString() + " " + ScalarOpName(op_) + " " +
             children_[1]->ToString() + ")";
  }
}

bool Scalar::Equals(const Scalar& other) const {
  return ToString() == other.ToString();
}

void Scalar::SplitConjuncts(const Ptr& pred, std::vector<Ptr>* out) {
  if (pred == nullptr) return;
  if (pred->op() == ScalarOp::kAnd) {
    SplitConjuncts(pred->children()[0], out);
    SplitConjuncts(pred->children()[1], out);
    return;
  }
  out->push_back(pred);
}

Scalar::Ptr Scalar::CombineConjuncts(const std::vector<Ptr>& conjuncts) {
  Ptr out;
  for (const Ptr& c : conjuncts) {
    out = out == nullptr ? c : And(out, c);
  }
  return out;
}

}  // namespace auxview
