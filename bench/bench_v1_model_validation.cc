// V1: cost-model validation. The storage engine charges page I/Os with the
// same unit model the optimizer estimates with (Section 3.6's hash-index
// model); this bench runs real maintenance streams and compares counted
// I/Os per transaction against the optimizer's per-transaction estimates
// for each view set, plus a throughput benchmark of the runtime engine.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace auxview {
namespace {

struct V1Setup {
  std::unique_ptr<EmpDeptWorkload> workload;
  std::unique_ptr<Memo> memo;
  std::unique_ptr<ViewSelector> selector;
  bench::PaperGroups groups;
};

V1Setup& Setup() {
  static V1Setup* setup = [] {
    auto* s = new V1Setup;
    EmpDeptConfig config;
    config.num_depts = 200;  // smaller than the paper for bench speed;
    config.emps_per_dept = 10;  // same 10-employee fan-in -> same costs
    s->workload = std::make_unique<EmpDeptWorkload>(config);
    auto tree = s->workload->ProblemDeptTree();
    auto memo = BuildExpandedMemo(*tree, s->workload->catalog());
    s->memo = std::make_unique<Memo>(std::move(memo).value());
    s->selector = std::make_unique<ViewSelector>(s->memo.get(),
                                                 &s->workload->catalog());
    s->groups = bench::FindPaperGroups(*s->memo);
    return s;
  }();
  return *setup;
}

void PrintResult() {
  auto& s = Setup();
  const auto& g = s.groups;
  bench::PrintHeader(
      "V1: estimated vs counted page I/Os per transaction "
      "(30-transaction streams; 200 depts x 10 emps)",
      {"est", "measured", "err"});
  for (const ViewSet& extra :
       std::vector<ViewSet>{{}, {g.n3}, {g.n4}, {g.n3, g.n4}}) {
    for (const TransactionType& txn :
         {s.workload->TxnModEmp(), s.workload->TxnModDept()}) {
      ViewSet views = extra;
      views.insert(g.n1);
      auto plan = s.selector->BestTrack(views, txn);
      if (!plan.ok()) continue;

      Database db;
      if (!s.workload->Populate(&db).ok()) continue;
      ViewManager manager(s.memo.get(), &s.workload->catalog(), &db);
      if (!manager.Materialize(views).ok()) continue;
      TxnGenerator gen(17);
      db.counter().Reset();
      const int kSteps = 30;
      bool ok = true;
      for (int i = 0; i < kSteps && ok; ++i) {
        auto concrete = gen.Generate(txn, db);
        ok = concrete.ok() &&
             manager.ApplyTransaction(*concrete, txn, plan->track).ok();
      }
      if (!ok) continue;
      const double measured =
          static_cast<double>(db.counter().total()) / kSteps;
      bench::PrintRow(ViewSetToString(extra) + "  " + txn.name,
                      {plan->cost.total(), measured,
                       measured - plan->cost.total()});
    }
  }
  std::printf(
      "  (err != 0 can arise from estimation vs data skew; the model and "
      "the engine share the same unit costs.)\n");
}

void BM_MaintainTransaction(benchmark::State& state) {
  auto& s = Setup();
  const auto& g = s.groups;
  ViewSet views = {g.n1};
  if (state.range(0) == 1) views.insert(g.n3);
  const TransactionType txn = s.workload->TxnModEmp();
  auto plan = s.selector->BestTrack(views, txn);
  Database db;
  (void)s.workload->Populate(&db);
  ViewManager manager(s.memo.get(), &s.workload->catalog(), &db);
  (void)manager.Materialize(views);
  TxnGenerator gen(23);
  for (auto _ : state) {
    auto concrete = gen.Generate(txn, db);
    benchmark::DoNotOptimize(
        manager.ApplyTransaction(*concrete, txn, plan->track).ok());
  }
  state.SetLabel(state.range(0) == 1 ? "with SumOfSals" : "no extra views");
}
BENCHMARK(BM_MaintainTransaction)->Arg(0)->Arg(1);

void BM_MaterializeViews(benchmark::State& state) {
  auto& s = Setup();
  const ViewSet views = {s.groups.n1, s.groups.n3, s.groups.n4};
  Database db;
  (void)s.workload->Populate(&db);
  for (auto _ : state) {
    ViewManager manager(s.memo.get(), &s.workload->catalog(), &db);
    benchmark::DoNotOptimize(manager.Materialize(views).ok());
  }
}
BENCHMARK(BM_MaterializeViews)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace auxview

int main(int argc, char** argv) {
  return auxview::bench::BenchMain("v1_model_validation", argc, argv,
                                   [] { auxview::PrintResult(); });
}
