// Reproduces the paper's Figure 5 and Section 4 (Shielding Principle): the
// aggregation node of SUM(S.Quantity * T.Price) BY Item is an articulation
// node of the DAG (the aggregate can be pushed neither below the S-T join
// nor above the R join), so the sub-DAG below it can be optimized locally.
// The bench verifies that the shielded search returns the exhaustive
// optimum while costing fewer view sets, and times both.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "memo/articulation.h"
#include "workload/chain.h"
#include "workload/fig5.h"

namespace auxview {
namespace {

struct F5Setup {
  std::unique_ptr<Fig5Workload> workload;
  std::unique_ptr<Memo> memo;
  std::unique_ptr<ViewSelector> selector;
  std::vector<TransactionType> txns;
};

F5Setup& Setup() {
  static F5Setup* setup = [] {
    auto* s = new F5Setup;
    s->workload = std::make_unique<Fig5Workload>(Fig5Config{});
    auto tree = s->workload->ViewTree();
    auto memo = BuildExpandedMemo(*tree, s->workload->catalog());
    s->memo = std::make_unique<Memo>(std::move(memo).value());
    s->selector = std::make_unique<ViewSelector>(s->memo.get(),
                                                 &s->workload->catalog());
    s->txns = {s->workload->TxnModS(4), s->workload->TxnModT(2),
               s->workload->TxnModR(1)};
    return s;
  }();
  return *setup;
}

void PrintResult() {
  auto& s = Setup();
  auto tree = s.workload->ViewTree();
  std::printf("\nF5: articulation node and the Shielding Principle "
              "(Figure 5, Theorem 4.1)\n");
  std::printf("\n  view tree:\n%s", (*tree)->TreeToString().c_str());

  const std::set<GroupId> arts = FindArticulationGroups(*s.memo);
  std::printf("\n  articulation equivalence nodes:");
  for (GroupId g : arts) {
    if (!s.memo->group(g).is_leaf) std::printf(" N%d", g);
  }
  std::printf("\n");

  auto exhaustive = s.selector->Exhaustive(s.txns);
  auto shielded = s.selector->Shielding(s.txns);
  if (!exhaustive.ok() || !shielded.ok()) {
    std::printf("  optimize failed\n");
    return;
  }
  bench::PrintHeader("  exhaustive vs shielding",
                     {"cost", "viewsets", "pruned"});
  bench::PrintRow("exhaustive",
                  {exhaustive->weighted_cost,
                   static_cast<double>(exhaustive->viewsets_costed), 0});
  bench::PrintRow("shielding",
                  {shielded->weighted_cost,
                   static_cast<double>(shielded->viewsets_costed),
                   static_cast<double>(shielded->viewsets_pruned)});
  std::printf("  same optimum: %s; chosen views: %s\n",
              shielded->weighted_cost == exhaustive->weighted_cost ? "yes"
                                                                   : "NO",
              ViewSetToString(exhaustive->views).c_str());

  // A wider shielded interior: an aggregate on top of a k-relation chain
  // join. The aggregate's input group is an articulation node whose
  // interior holds the whole join space, so shielding prunes most of the
  // enumeration.
  for (int k : {3, 4}) {
    ChainConfig config;
    config.num_relations = k;
    config.with_aggregate = true;
    ChainWorkload chain{config};
    auto chain_tree = chain.ChainViewTree();
    if (!chain_tree.ok()) continue;
    auto chain_memo = BuildExpandedMemo(*chain_tree, chain.catalog());
    if (!chain_memo.ok()) continue;
    ViewSelector chain_selector(&*chain_memo, &chain.catalog());
    const auto txns = chain.AllTxns();
    auto ex = chain_selector.Exhaustive(txns);
    auto sh = chain_selector.Shielding(txns);
    if (!ex.ok() || !sh.ok()) continue;
    bench::PrintHeader("  aggregate-over-chain-" + std::to_string(k),
                       {"cost", "viewsets", "pruned"});
    bench::PrintRow("exhaustive",
                    {ex->weighted_cost,
                     static_cast<double>(ex->viewsets_costed), 0});
    bench::PrintRow("shielding",
                    {sh->weighted_cost,
                     static_cast<double>(sh->viewsets_costed),
                     static_cast<double>(sh->viewsets_pruned)});
  }
}

void BM_Fig5Exhaustive(benchmark::State& state) {
  auto& s = Setup();
  for (auto _ : state) {
    auto result = s.selector->Exhaustive(s.txns);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_Fig5Exhaustive);

void BM_Fig5Shielding(benchmark::State& state) {
  auto& s = Setup();
  for (auto _ : state) {
    auto result = s.selector->Shielding(s.txns);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_Fig5Shielding);

void BM_FindArticulationGroups(benchmark::State& state) {
  auto& s = Setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindArticulationGroups(*s.memo).size());
  }
}
BENCHMARK(BM_FindArticulationGroups);

}  // namespace
}  // namespace auxview

int main(int argc, char** argv) {
  return auxview::bench::BenchMain("f5_shielding", argc, argv,
                                   [] { auxview::PrintResult(); });
}
