// Reproduces the paper's Section 3.6 update-track query-cost table (T3):
// the total query cost along each of the four update tracks, per view set,
// on the Figure 2 DAG. Paper values (reconstructed from the prose):
//
//                                    {}   {N3}  {N4}
//   N1,E1,N2,E2,N3,E4,N5  >Emp       13     2    13
//   N1,E1,N2,E3,N4,E5,N5  >Emp       15    15    13
//   N1,E1,N2,E2,N6        >Dept      11     2    11
//   N1,E1,N2,E3,N4,E5,N6  >Dept      11    11    11
//
// The >Emp/E2 track includes Q2Re + Q4e (Q4e elided under {N3}); the
// >Dept/E3 track includes only Q5Ld because Q3d costs 0 through the
// key-based elision (DName is the key of Dept, so whole groups arrive).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace auxview {
namespace {

struct T3Setup {
  std::unique_ptr<EmpDeptWorkload> workload;
  std::unique_ptr<Memo> memo;  // Figure 2 DAG (aggregation rules only)
  bench::PaperGroups groups;
};

T3Setup& Setup() {
  static T3Setup* setup = [] {
    auto* s = new T3Setup;
    s->workload = std::make_unique<EmpDeptWorkload>(EmpDeptConfig{});
    auto tree = s->workload->ProblemDeptTree();
    Memo memo;
    (void)memo.AddTree(*tree);
    auto rules = AggregationOnlyRuleSet();
    (void)ExpandMemo(&memo, s->workload->catalog(), rules);
    s->memo = std::make_unique<Memo>(std::move(memo));
    s->groups = bench::FindPaperGroups(*s->memo);
    return s;
  }();
  return *setup;
}

void PrintTable() {
  auto& s = Setup();
  const auto& g = s.groups;
  const std::vector<ViewSet> sets = {{g.n1}, {g.n1, g.n3}, {g.n1, g.n4}};

  StatsAnalysis stats(s.memo.get(), &s.workload->catalog());
  FdAnalysis fds(s.memo.get(), &s.workload->catalog());
  DeltaAnalysis delta(s.memo.get(), &s.workload->catalog(), &stats);
  QueryCoster query(s.memo.get(), &s.workload->catalog(), &stats, &fds,
                    IoCostModel());
  TrackCoster coster(s.memo.get(), &s.workload->catalog(), &stats, &fds,
                     &delta, &query);
  TrackEnumerator enumerator(s.memo.get(), &delta);

  // Which alternative was chosen at N2: the E2 join (input N3) or the E3
  // aggregate (input N4)?
  auto track_label = [&](const UpdateTrack& track) -> std::string {
    auto it = track.choice.find(g.n2);
    if (it == track.choice.end()) return "track (no N2 choice)";
    const MemoExpr& e = s.memo->expr(it->second);
    for (GroupId in : e.inputs) {
      if (s.memo->Find(in) == g.n3) return "track via N3 (E2,E4)";
      if (s.memo->Find(in) == g.n4) return "track via N4 (E3,E5)";
    }
    return "track via leaves";
  };

  bench::PrintHeader(
      "T3: per-update-track query costs (page I/Os) "
      "(paper Section 3.6, third table)",
      {"{}", "{N3}", "{N4}"});
  for (const TransactionType& txn :
       {s.workload->TxnModEmp(), s.workload->TxnModDept()}) {
    auto tracks = enumerator.Enumerate({g.n1}, txn);
    if (!tracks.ok()) continue;
    for (const UpdateTrack& track : *tracks) {
      std::vector<double> values;
      for (const ViewSet& views : sets) {
        auto cost = coster.Cost(track, views, txn);
        values.push_back(cost.ok() ? cost->query_cost : -1);
      }
      bench::PrintRow(track_label(track) + "  " + txn.name, values);
    }
  }
  std::printf(
      "  (Q3d = 0 on the >Dept/N4 track: the delta is group-complete "
      "because DName is the key of Dept.)\n");
}

void BM_EnumerateTracks(benchmark::State& state) {
  auto& s = Setup();
  StatsAnalysis stats(s.memo.get(), &s.workload->catalog());
  DeltaAnalysis delta(s.memo.get(), &s.workload->catalog(), &stats);
  TrackEnumerator enumerator(s.memo.get(), &delta);
  const ViewSet views = {s.groups.n1, s.groups.n3, s.groups.n4};
  const TransactionType txn = s.workload->TxnModEmp();
  for (auto _ : state) {
    auto tracks = enumerator.Enumerate(views, txn);
    benchmark::DoNotOptimize(tracks.ok());
  }
}
BENCHMARK(BM_EnumerateTracks);

void BM_CostOneTrack(benchmark::State& state) {
  auto& s = Setup();
  StatsAnalysis stats(s.memo.get(), &s.workload->catalog());
  FdAnalysis fds(s.memo.get(), &s.workload->catalog());
  DeltaAnalysis delta(s.memo.get(), &s.workload->catalog(), &stats);
  QueryCoster query(s.memo.get(), &s.workload->catalog(), &stats, &fds,
                    IoCostModel());
  TrackCoster coster(s.memo.get(), &s.workload->catalog(), &stats, &fds,
                     &delta, &query);
  TrackEnumerator enumerator(s.memo.get(), &delta);
  const ViewSet views = {s.groups.n1, s.groups.n3};
  const TransactionType txn = s.workload->TxnModEmp();
  auto tracks = enumerator.Enumerate(views, txn);
  for (auto _ : state) {
    auto cost = coster.Cost((*tracks)[0], views, txn);
    benchmark::DoNotOptimize(cost.ok());
  }
}
BENCHMARK(BM_CostOneTrack);

}  // namespace
}  // namespace auxview

int main(int argc, char** argv) {
  return auxview::bench::BenchMain("t3_track_costs", argc, argv,
                                   [] { auxview::PrintTable(); });
}
