// Reproduces the paper's Section 3.6 combined table and headline result
// (T4): the minimum total maintenance cost per transaction per view set,
// and the ~30% reduction from materializing SumOfSals. Paper values:
//
//                {}   {N3}  {N4}
//   >Emp         13     5    16
//   >Dept        11     2    32
//   average      12    3.5   24      ({N3} / {} ~ 29%)
//
// Also runs Algorithm OptimalViewSet end to end and reports its choice,
// and times the full exhaustive optimization.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace auxview {
namespace {

bench::PaperSetup& Setup() {
  static bench::PaperSetup setup = bench::MakePaperSetup();
  return setup;
}

void PrintTable() {
  auto& s = Setup();
  const auto& g = s.groups;
  const std::vector<ViewSet> sets = {{g.n1}, {g.n1, g.n3}, {g.n1, g.n4}};
  bench::PrintHeader(
      "T4: combined minimum maintenance cost (page I/Os) "
      "(paper Section 3.6, final table)",
      {"{}", "{N3}", "{N4}"});
  std::vector<double> avg(3, 0);
  for (const TransactionType& txn :
       {s.workload->TxnModEmp(), s.workload->TxnModDept()}) {
    std::vector<double> values;
    for (size_t i = 0; i < sets.size(); ++i) {
      auto plan = s.selector->BestTrack(sets[i], txn);
      const double v = plan.ok() ? plan->cost.total() : -1;
      values.push_back(v);
      avg[i] += v / 2;
    }
    bench::PrintRow(txn.name, values);
  }
  bench::PrintRow("average (equal weights)", avg);
  std::printf("  headline: {N3} costs %.0f%% of {} (paper: \"about 30%%\")\n",
              100 * avg[1] / avg[0]);

  std::printf(
      "\n  (paper name -> memo group: N1=N%d, N2=N%d, N3=N%d, N4=N%d)\n",
      g.n1, g.n2, g.n3, g.n4);
  auto result = s.selector->Exhaustive(
      {s.workload->TxnModEmp(), s.workload->TxnModDept()});
  if (result.ok()) {
    std::printf(
        "  Algorithm OptimalViewSet: chose %s (weighted cost %.4g), "
        "%lld view sets / %lld tracks costed\n",
        ViewSetToString(result->views).c_str(), result->weighted_cost,
        static_cast<long long>(result->viewsets_costed),
        static_cast<long long>(result->tracks_costed));
    std::printf("  the chosen additional view is the paper's SumOfSals:\n");
    auto tree = s.memo->ExtractOriginalTree(s.groups.n3);
    if (tree.ok()) std::printf("%s", (*tree)->TreeToString().c_str());
  }
}

void BM_OptimalViewSetExhaustive(benchmark::State& state) {
  auto& s = Setup();
  const std::vector<TransactionType> txns = {s.workload->TxnModEmp(),
                                             s.workload->TxnModDept()};
  for (auto _ : state) {
    auto result = s.selector->Exhaustive(txns);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_OptimalViewSetExhaustive);

void BM_MemoExpansion(benchmark::State& state) {
  auto& s = Setup();
  auto tree = s.workload->ProblemDeptTree();
  for (auto _ : state) {
    auto memo = BuildExpandedMemo(*tree, s.workload->catalog());
    benchmark::DoNotOptimize(memo.ok());
  }
}
BENCHMARK(BM_MemoExpansion);

}  // namespace
}  // namespace auxview

int main(int argc, char** argv) {
  return auxview::bench::BenchMain("t4_total_costs", argc, argv,
                                   [] { auxview::PrintTable(); });
}
