// Section 5 heuristics (H1): solution quality and optimizer effort of the
// single-expression-tree restriction, the heuristic single marking, the
// greedy hill-climb, and the shielded search, against the exhaustive
// Algorithm OptimalViewSet — on ProblemDept and on chain joins of growing
// width.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/chain.h"

namespace auxview {
namespace {

void RunComparison(const std::string& name, const Expr::Ptr& tree,
                   const Catalog& catalog,
                   const std::vector<TransactionType>& txns,
                   int max_tracks = 4096) {
  auto memo = BuildExpandedMemo(tree, catalog);
  if (!memo.ok()) return;
  ViewSelector selector(&*memo, &catalog);
  bench::PrintHeader("H1: strategies on " + name + " (" +
                         std::to_string(memo->LiveGroups().size()) +
                         " groups, " +
                         std::to_string(memo->LiveExprs().size()) + " ops)",
                     {"cost", "ratio", "viewsets", "tracks"});
  OptimizeOptions base;
  base.tracks.max_tracks = max_tracks;
  auto exhaustive = selector.Exhaustive(txns, base);
  if (!exhaustive.ok()) {
    std::printf("  exhaustive failed: %s\n",
                exhaustive.status().ToString().c_str());
    return;
  }
  auto report = [&](const char* label, const StatusOr<OptimizeResult>& r) {
    if (!r.ok()) {
      std::printf("  %-34s %s\n", label, r.status().ToString().c_str());
      return;
    }
    bench::PrintRow(label, {r->weighted_cost,
                            r->weighted_cost / exhaustive->weighted_cost,
                            static_cast<double>(r->viewsets_costed),
                            static_cast<double>(r->tracks_costed)});
  };
  report("exhaustive", exhaustive);
  report("shielding", selector.Shielding(txns, base));
  report("single-tree", selector.SingleTree(txns, base));
  report("heuristic-marking", selector.HeuristicMarking(txns, base));
  report("greedy", selector.Greedy(txns, base));
  OptimizeOptions approx = base;
  approx.tracks.greedy = true;
  report("greedy + approx tracks", selector.Greedy(txns, approx));
}

void PrintResults() {
  {
    EmpDeptWorkload workload{EmpDeptConfig{}};
    auto tree = workload.ProblemDeptTree();
    RunComparison("ProblemDept", *tree, workload.catalog(),
                  {workload.TxnModEmp(), workload.TxnModDept()});
  }
  for (int k : {3, 4, 5}) {
    ChainConfig config;
    config.num_relations = k;
    config.with_aggregate = true;
    ChainWorkload workload{config};
    auto tree = workload.ChainViewTree();
    if (!tree.ok()) continue;
    // chain-5's unbounded track space is huge; cap it so the "exhaustive"
    // reference stays bounded (documented in the output ratios).
    const int max_tracks = k >= 5 ? 64 : 4096;
    RunComparison("chain-" + std::to_string(k), *tree, workload.catalog(),
                  workload.AllTxns({4, 1, 1, 1, 1}), max_tracks);
  }

  // Enumeration wall time with/without the track-cost cache and with worker
  // threads, on the largest DAG the exhaustive reference fully explores.
  {
    ChainConfig config;
    config.num_relations = 4;
    config.with_aggregate = true;
    ChainWorkload workload{config};
    auto tree = workload.ChainViewTree();
    if (!tree.ok()) return;
    auto memo = BuildExpandedMemo(*tree, workload.catalog());
    if (!memo.ok()) return;
    OptimizeOptions base;
    base.tracks.max_tracks = 4096;
    bench::PrintOptimizerScaling(&*memo, &workload.catalog(),
                                 workload.AllTxns({4, 1, 1, 1, 1}), base,
                                 "H1 optimizer scaling: chain-4, 5 txns");
  }

  // Maintenance wall time across delta-propagation worker counts on the
  // aggregated chain-3 (the deepest track this bench maintains end to end).
  {
    ChainConfig config;
    config.num_relations = 3;
    config.rows_per_relation = 40;
    config.fanout = 2;
    config.with_aggregate = true;
    auto workload = std::make_shared<ChainWorkload>(config);
    auto tree = workload->ChainViewTree();
    if (!tree.ok()) return;
    auto memo = BuildExpandedMemo(*tree, workload->catalog());
    if (!memo.ok()) return;
    bench::PrintPropagationScaling(
        &*memo, &workload->catalog(),
        [workload](Database* db) { return workload->Populate(db); },
        workload->AllTxns(),
        "H1 propagation scaling: chain-3, threads 1/2/4/8");
  }
}

void BM_StrategyOnChain4(benchmark::State& state) {
  static ChainWorkload workload{[] {
    ChainConfig c;
    c.num_relations = 4;
    c.with_aggregate = true;
    return c;
  }()};
  static Memo memo =
      std::move(BuildExpandedMemo(*workload.ChainViewTree(),
                                  workload.catalog())
                    .value());
  ViewSelector selector(&memo, &workload.catalog());
  const auto txns = workload.AllTxns();
  const int strategy = static_cast<int>(state.range(0));
  for (auto _ : state) {
    StatusOr<OptimizeResult> r = [&]() -> StatusOr<OptimizeResult> {
      switch (strategy) {
        case 0:
          return selector.Exhaustive(txns);
        case 1:
          return selector.Shielding(txns);
        case 2:
          return selector.SingleTree(txns);
        case 3:
          return selector.HeuristicMarking(txns);
        default:
          return selector.Greedy(txns);
      }
    }();
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_StrategyOnChain4)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace auxview

int main(int argc, char** argv) {
  return auxview::bench::BenchMain("h1_heuristics", argc, argv,
                                   [] { auxview::PrintResults(); });
}
