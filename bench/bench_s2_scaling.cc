// S2: scaling of the search machinery with view complexity. For chain
// joins of k = 2..6 relations: memo size after rule expansion, number of
// candidate equivalence nodes (so 2^n view sets), tracks costed, and
// optimizer wall time per strategy.

#include <chrono>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/chain.h"

namespace auxview {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void PrintResult() {
  bench::PrintHeader(
      "S2: scaling with chain width k (memo size / optimizer effort)",
      {"groups", "ops", "cands", "exh_ms", "greedy_ms", "ratio"});
  for (int k = 2; k <= 6; ++k) {
    ChainConfig config;
    config.num_relations = k;
    config.with_aggregate = true;
    ChainWorkload workload{config};
    auto tree = workload.ChainViewTree();
    if (!tree.ok()) continue;
    auto memo = BuildExpandedMemo(*tree, workload.catalog());
    if (!memo.ok()) continue;
    ViewSelector selector(&*memo, &workload.catalog());
    const auto txns = workload.AllTxns();
    const double cands =
        static_cast<double>(memo->NonLeafGroups().size()) - 1;

    double exhaustive_ms = -1;
    double exhaustive_cost = -1;
    if (cands <= 14) {
      OptimizeOptions options;
      options.max_candidates = 14;
      options.tracks.max_tracks = 256;
      const auto start = std::chrono::steady_clock::now();
      auto result = selector.Exhaustive(txns, options);
      exhaustive_ms = MillisSince(start);
      if (result.ok()) exhaustive_cost = result->weighted_cost;
    }
    const auto start = std::chrono::steady_clock::now();
    auto greedy = selector.Greedy(txns);
    const double greedy_ms = MillisSince(start);
    const double ratio = (greedy.ok() && exhaustive_cost > 0)
                             ? greedy->weighted_cost / exhaustive_cost
                             : -1;
    bench::PrintRow("chain-" + std::to_string(k),
                    {static_cast<double>(memo->LiveGroups().size()),
                     static_cast<double>(memo->LiveExprs().size()), cands,
                     exhaustive_ms, greedy_ms, ratio});
  }
  std::printf(
      "  (exh_ms = -1: exhaustive skipped, candidate count exceeds the "
      "2^14 budget; ratio = greedy cost / exhaustive cost. The exhaustive "
      "runs cap track enumeration at 256 tracks per view set, so ratios "
      "slightly below 1 indicate the cap bit, not a greedy win.)\n");
}

void BM_ExpandChain(benchmark::State& state) {
  ChainConfig config;
  config.num_relations = static_cast<int>(state.range(0));
  config.with_aggregate = true;
  ChainWorkload workload{config};
  auto tree = workload.ChainViewTree();
  for (auto _ : state) {
    auto memo = BuildExpandedMemo(*tree, workload.catalog());
    benchmark::DoNotOptimize(memo.ok());
  }
}
BENCHMARK(BM_ExpandChain)->DenseRange(2, 6)->Unit(benchmark::kMillisecond);

void BM_GreedyChain(benchmark::State& state) {
  ChainConfig config;
  config.num_relations = static_cast<int>(state.range(0));
  config.with_aggregate = true;
  static std::map<int, std::pair<std::unique_ptr<ChainWorkload>,
                                 std::unique_ptr<Memo>>>
      cache;
  auto& entry = cache[config.num_relations];
  if (entry.first == nullptr) {
    entry.first = std::make_unique<ChainWorkload>(config);
    entry.second = std::make_unique<Memo>(std::move(
        BuildExpandedMemo(*entry.first->ChainViewTree(),
                          entry.first->catalog())
            .value()));
  }
  ViewSelector selector(entry.second.get(), &entry.first->catalog());
  const auto txns = entry.first->AllTxns();
  for (auto _ : state) {
    auto result = selector.Greedy(txns);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_GreedyChain)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace auxview

int main(int argc, char** argv) {
  return auxview::bench::BenchMain("s2_scaling", argc, argv,
                                   [] { auxview::PrintResult(); });
}
