// M1 (paper Section 6): maintaining a SET of materialized views over one
// multi-root expression DAG. Two user views share subexpressions
// (ProblemDept and the SumOfSals rollup); jointly optimizing the set lets
// the maintenance of one pay for the auxiliary view the other wants, so
// the joint cost is below the sum of the per-view optima.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace auxview {
namespace {

struct M1Setup {
  std::unique_ptr<EmpDeptWorkload> workload;
  std::unique_ptr<Memo> memo;
  std::unique_ptr<ViewSelector> selector;
  GroupId root1 = -1;  // ProblemDept
  GroupId root2 = -1;  // SumOfSals as a user view
  std::vector<TransactionType> txns;
};

M1Setup& Setup() {
  static M1Setup* setup = [] {
    auto* s = new M1Setup;
    s->workload = std::make_unique<EmpDeptWorkload>(EmpDeptConfig{});
    auto v1 = s->workload->ProblemDeptTree();
    ExprBuilder b(&s->workload->catalog());
    Expr::Ptr v2 = b.Aggregate(b.Scan("Emp"), {"DName"},
                               {{AggFunc::kSum, Col("Salary"), "SumSal"}});
    s->memo = std::make_unique<Memo>();
    s->root1 = *s->memo->AddTree(*v1);
    s->root2 = *s->memo->AddTree(v2);
    const auto rules = DefaultRuleSet();
    (void)ExpandMemo(s->memo.get(), s->workload->catalog(), rules);
    s->root1 = s->memo->Find(s->root1);
    s->root2 = s->memo->Find(s->root2);
    s->selector = std::make_unique<ViewSelector>(s->memo.get(),
                                                 &s->workload->catalog());
    s->txns = {s->workload->TxnModEmp(), s->workload->TxnModDept()};
    return s;
  }();
  return *setup;
}

void PrintResult() {
  auto& s = Setup();
  std::printf("\nM1: maintaining a set of views (Section 6) — "
              "ProblemDept + SumOfSals share one DAG (%zu groups)\n",
              s.memo->LiveGroups().size());

  OptimizeOptions opts;
  opts.cost.include_root_update_cost = true;
  std::set<GroupId> cands;
  for (GroupId g : s.memo->NonLeafGroups()) cands.insert(g);

  auto joint = s.selector->ExhaustiveMultiView({s.root1, s.root2}, s.txns);
  auto only1 = s.selector->ExhaustiveOver(s.txns, opts, {s.root1}, cands);
  auto only2 = s.selector->ExhaustiveOver(s.txns, opts, {s.root2}, cands);
  if (!joint.ok() || !only1.ok() || !only2.ok()) return;
  bench::PrintHeader("  joint vs independent optimization",
                     {"cost", "viewsets"});
  bench::PrintRow("ProblemDept alone",
                  {only1->weighted_cost,
                   static_cast<double>(only1->viewsets_costed)});
  bench::PrintRow("SumOfSals alone",
                  {only2->weighted_cost,
                   static_cast<double>(only2->viewsets_costed)});
  bench::PrintRow("sum of the two",
                  {only1->weighted_cost + only2->weighted_cost, 0});
  bench::PrintRow("joint (multi-root)",
                  {joint->weighted_cost,
                   static_cast<double>(joint->viewsets_costed)});
  std::printf("  joint plan: %s — maintaining SumOfSals doubles as "
              "ProblemDept's auxiliary view.\n",
              ViewSetToString(joint->views).c_str());
}

void BM_MultiViewExhaustive(benchmark::State& state) {
  auto& s = Setup();
  for (auto _ : state) {
    auto result =
        s.selector->ExhaustiveMultiView({s.root1, s.root2}, s.txns);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_MultiViewExhaustive);

}  // namespace
}  // namespace auxview

int main(int argc, char** argv) {
  return auxview::bench::BenchMain("m1_multiview", argc, argv,
                                   [] { auxview::PrintResult(); });
}
