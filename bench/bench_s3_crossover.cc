// S3: transaction-weight sensitivity (the trade-off of Example 1.1).
// Sweeping the relative frequency of >Emp vs >Dept shows the per-view-set
// weighted cost lines; {N3} dominates everywhere on the paper's example
// ("Independent of the weighting ... strategy (b) wins"), and the
// per-transaction crossovers appear when employee updates are made cheap
// via a larger department fan-in (fewer, larger departments), where the
// extra maintenance of N3 stops paying for rare >Emp workloads... the
// sweep reports the optimizer's choice at each mix so the crossover, when
// it exists, is visible.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace auxview {
namespace {

void SweepFor(const EmpDeptConfig& config, const std::string& label) {
  EmpDeptWorkload workload{config};
  auto tree = workload.ProblemDeptTree();
  if (!tree.ok()) return;
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  if (!memo.ok()) return;
  ViewSelector selector(&*memo, &workload.catalog());
  const bench::PaperGroups g = bench::FindPaperGroups(*memo);

  bench::PrintHeader("S3 sweep (" + label + "): weighted cost vs >Emp share",
                     {"{}", "{N3}", "{N4}", "{N3,N4}", "best"});
  for (double emp_share : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const std::vector<TransactionType> txns = {
        workload.TxnModEmp(emp_share), workload.TxnModDept(1 - emp_share)};
    std::vector<double> values;
    for (const ViewSet& extra : std::vector<ViewSet>{
             {}, {g.n3}, {g.n4}, {g.n3, g.n4}}) {
      ViewSet views = extra;
      views.insert(g.n1);
      auto cost = selector.CostViewSet(txns, views);
      values.push_back(cost.ok() ? cost->weighted_cost : -1);
    }
    auto best = selector.Exhaustive(txns);
    values.push_back(best.ok() ? best->weighted_cost : -1);
    char label_buf[48];
    std::snprintf(label_buf, sizeof(label_buf), "emp share %.2f%s",
                  emp_share,
                  best.ok() && best->views.count(g.n3) ? "  -> {N3}" : "");
    bench::PrintRow(label_buf, values);
  }
}

void PrintResult() {
  SweepFor(EmpDeptConfig{}, "paper sizes: 1000 depts x 10 emps");

  EmpDeptConfig big_depts;
  big_depts.num_depts = 100;
  big_depts.emps_per_dept = 100;
  SweepFor(big_depts, "100 depts x 100 emps");

  EmpDeptConfig small_depts;
  small_depts.num_depts = 10000;
  small_depts.emps_per_dept = 1;
  SweepFor(small_depts, "10000 depts x 1 emp");

  // Enumeration wall time with/without the track-cost cache and with
  // worker threads, on the paper-size ProblemDept at a balanced mix.
  {
    EmpDeptWorkload workload{EmpDeptConfig{}};
    auto tree = workload.ProblemDeptTree();
    if (!tree.ok()) return;
    auto memo = BuildExpandedMemo(*tree, workload.catalog());
    if (!memo.ok()) return;
    bench::PrintOptimizerScaling(
        &*memo, &workload.catalog(),
        {workload.TxnModEmp(0.5), workload.TxnModDept(0.5)},
        OptimizeOptions{},
        "S3 optimizer scaling: ProblemDept, 50/50 mix");
  }

  // Maintenance wall time across delta-propagation worker counts on a
  // scaled-down ProblemDept (each row rebuilds and re-materializes).
  {
    EmpDeptConfig config;
    config.num_depts = 50;
    config.emps_per_dept = 5;
    auto workload = std::make_shared<EmpDeptWorkload>(config);
    auto tree = workload->ProblemDeptTree();
    if (!tree.ok()) return;
    auto memo = BuildExpandedMemo(*tree, workload->catalog());
    if (!memo.ok()) return;
    bench::PrintPropagationScaling(
        &*memo, &workload->catalog(),
        [workload](Database* db) { return workload->Populate(db); },
        {workload->TxnModEmp()},
        "S3 propagation scaling: >Emp, threads 1/2/4/8");
  }
}

void BM_WeightSweepOptimize(benchmark::State& state) {
  static bench::PaperSetup setup = bench::MakePaperSetup();
  const double share = static_cast<double>(state.range(0)) / 100.0;
  const std::vector<TransactionType> txns = {
      setup.workload->TxnModEmp(share),
      setup.workload->TxnModDept(1 - share)};
  for (auto _ : state) {
    auto result = setup.selector->Exhaustive(txns);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_WeightSweepOptimize)->Arg(10)->Arg(50)->Arg(90);

}  // namespace
}  // namespace auxview

int main(int argc, char** argv) {
  return auxview::bench::BenchMain("s3_crossover", argc, argv,
                                   [] { auxview::PrintResult(); });
}
