// S5: maintenance cost by update kind. The paper's example uses single-
// tuple modifications; this extension tables the estimated (and runtime-
// validated) cost of insertions, deletions and modifications per view set,
// showing where self-maintainability applies: SUM/COUNT-style views absorb
// inserts and value-modifies from the old value alone, while deletions
// without a COUNT column and group-moving modifies fall back to queries.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace auxview {
namespace {

bench::PaperSetup& Setup() {
  static bench::PaperSetup setup = bench::MakePaperSetup();
  return setup;
}

std::vector<TransactionType> Kinds() {
  TransactionType hire;
  hire.name = "insert Emp";
  hire.updates.push_back(UpdateSpec{"Emp", UpdateKind::kInsert, 1, {}, {}});
  TransactionType quit;
  quit.name = "delete Emp";
  quit.updates.push_back(UpdateSpec{"Emp", UpdateKind::kDelete, 1, {}, {}});
  TransactionType raise = SingleModifyTxn("modify Emp.Salary", "Emp",
                                          {"Salary"});
  TransactionType rehome = SingleModifyTxn("modify Emp.DName", "Emp",
                                           {"DName"});
  return {hire, quit, raise, rehome};
}

void PrintTable() {
  auto& s = Setup();
  const auto& g = s.groups;
  const std::vector<ViewSet> sets = {{g.n1}, {g.n1, g.n3}, {g.n1, g.n4}};
  bench::PrintHeader(
      "S5: estimated maintenance cost by update kind (1 tuple of Emp)",
      {"{}", "{N3}", "{N4}"});
  for (const TransactionType& txn : Kinds()) {
    std::vector<double> values;
    for (const ViewSet& views : sets) {
      auto plan = s.selector->BestTrack(views, txn);
      values.push_back(plan.ok() ? plan->cost.total() : -1);
    }
    bench::PrintRow(txn.name, values);
  }
  std::printf(
      "  (inserts self-maintain SumOfSals; deletes and department moves "
      "need the old group re-read — no COUNT column is stored.)\n");

  // Runtime validation on a scaled copy (200 depts, same fan-in).
  EmpDeptConfig config;
  config.num_depts = 200;
  config.emps_per_dept = 10;
  EmpDeptWorkload data{config};
  auto tree = data.ProblemDeptTree();
  auto memo = BuildExpandedMemo(*tree, data.catalog());
  if (!memo.ok()) return;
  ViewSelector selector(&*memo, &data.catalog());
  const bench::PaperGroups groups = bench::FindPaperGroups(*memo);
  bench::PrintHeader("  measured (20-transaction streams), view set {N3}",
                     {"est", "measured"});
  for (const TransactionType& txn : Kinds()) {
    const ViewSet views = {groups.n1, groups.n3};
    auto plan = selector.BestTrack(views, txn);
    if (!plan.ok()) continue;
    Database db;
    if (!data.Populate(&db).ok()) continue;
    ViewManager manager(&*memo, &data.catalog(), &db);
    if (!manager.Materialize(views).ok()) continue;
    TxnGenerator gen(5);
    db.counter().Reset();
    const int kSteps = 20;
    bool ok = true;
    for (int i = 0; i < kSteps && ok; ++i) {
      auto concrete = gen.Generate(txn, db);
      ok = concrete.ok() &&
           manager.ApplyTransaction(*concrete, txn, plan->track).ok();
    }
    if (!ok) continue;
    bench::PrintRow(txn.name,
                    {plan->cost.total(),
                     static_cast<double>(db.counter().total()) / kSteps});
  }
}

void BM_MaintainByKind(benchmark::State& state) {
  auto& s = Setup();
  const TransactionType txn = Kinds()[static_cast<size_t>(state.range(0))];
  const ViewSet views = {s.groups.n1, s.groups.n3};
  for (auto _ : state) {
    auto plan = s.selector->BestTrack(views, txn);
    benchmark::DoNotOptimize(plan.ok());
  }
  state.SetLabel(txn.name);
}
BENCHMARK(BM_MaintainByKind)->DenseRange(0, 3);

}  // namespace
}  // namespace auxview

int main(int argc, char** argv) {
  return auxview::bench::BenchMain("s5_update_kinds", argc, argv,
                                   [] { auxview::PrintTable(); });
}
