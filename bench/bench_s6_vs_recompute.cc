// S6: incremental maintenance vs. recompute-from-scratch — the comparison
// motivating the whole field ("when a new employee is added ... the sum of
// the salaries of all the employees in that department needs to be
// recomputed ...; this can be expensive!", Example 1.1). Both engines are
// run for real; the table shows counted page I/Os per transaction and the
// speedup, per view set, plus how the gap scales with database size.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace auxview {
namespace {

struct Measured {
  double incremental = 0;
  double recompute = 0;
};

Measured MeasureOne(int num_depts, const ViewSet& extra_of, bool use_n3) {
  Measured out;
  EmpDeptConfig config;
  config.num_depts = num_depts;
  config.emps_per_dept = 10;
  EmpDeptWorkload workload{config};
  auto tree = workload.ProblemDeptTree();
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  if (!memo.ok()) return out;
  const bench::PaperGroups g = bench::FindPaperGroups(*memo);
  ViewSet views = {g.n1};
  if (use_n3) views.insert(g.n3);
  (void)extra_of;
  ViewSelector selector(&*memo, &workload.catalog());

  const std::vector<TransactionType> txns = {workload.TxnModEmp(),
                                             workload.TxnModDept()};
  const int kSteps = 20;
  // Charge the root view's updates too (unlike the paper's accounting):
  // with no auxiliary views the recompute baseline's entire work is the
  // root rebuild, which must show up on the counter.
  MaintainOptions maintain;
  maintain.charge_root_update = true;
  for (int mode = 0; mode < 2; ++mode) {
    Database db;
    if (!workload.Populate(&db).ok()) return out;
    ViewManager manager(&*memo, &workload.catalog(), &db, maintain);
    if (!manager.Materialize(views).ok()) return out;
    TxnGenerator gen(3);
    db.counter().Reset();
    for (int i = 0; i < kSteps; ++i) {
      const TransactionType& type = txns[i % txns.size()];
      auto txn = gen.Generate(type, db);
      if (!txn.ok()) return out;
      Status applied;
      if (mode == 0) {
        auto plan = selector.BestTrack(views, type);
        if (!plan.ok()) return out;
        applied = manager.ApplyTransaction(*txn, type, plan->track);
      } else {
        applied = manager.ApplyTransactionByRecompute(*txn, type);
      }
      if (!applied.ok()) return out;
    }
    const double per_txn = static_cast<double>(db.counter().total()) / kSteps;
    if (mode == 0) {
      out.incremental = per_txn;
    } else {
      out.recompute = per_txn;
    }
  }
  return out;
}

void PrintResult() {
  bench::PrintHeader(
      "S6: counted page I/Os per transaction, incremental vs recompute "
      "(10 emps/dept; view set {root} or {root, SumOfSals})",
      {"incr", "recomp", "speedup"});
  for (int depts : {100, 400, 1000}) {
    for (bool with_n3 : {false, true}) {
      Measured m = MeasureOne(depts, {}, with_n3);
      if (m.recompute <= 0) continue;
      const std::string label = std::to_string(depts) + " depts, " +
                                (with_n3 ? "{N3}" : "{}");
      bench::PrintRow(label, {m.incremental, m.recompute,
                              m.recompute / m.incremental});
    }
  }
  std::printf(
      "  (recompute scales with database size; incremental stays constant "
      "— the \"trading space for time\" premise, measured.)\n");

  // Latency quantiles over every transaction applied above (all database
  // sizes and view sets pooled), from the maintenance histograms. The
  // `_us` quantile columns are wall time and excluded from the golden
  // tables; `n` is deterministic.
  bench::PrintHeader("S6: per-transaction latency quantiles",
                     {"n", "p50_us", "p95_us"});
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  for (const char* name :
       {"maintain.apply_txn_us", "maintain.recompute_txn_us"}) {
    const obs::MetricsSnapshot::HistogramValue* h =
        snapshot.FindHistogram(name);
    if (h == nullptr) continue;
    bench::PrintRow(name, {static_cast<double>(h->count), h->Quantile(0.5),
                           h->Quantile(0.95)});
  }
}

void BM_IncrementalVsRecompute(benchmark::State& state) {
  EmpDeptConfig config;
  config.num_depts = 100;
  config.emps_per_dept = 10;
  static EmpDeptWorkload workload{config};
  static Memo memo = std::move(
      BuildExpandedMemo(*workload.ProblemDeptTree(), workload.catalog())
          .value());
  const bench::PaperGroups g = bench::FindPaperGroups(memo);
  const ViewSet views = {g.n1, g.n3};
  ViewSelector selector(&memo, &workload.catalog());
  const TransactionType txn_type = workload.TxnModEmp();
  Database db;
  (void)workload.Populate(&db);
  ViewManager manager(&memo, &workload.catalog(), &db);
  (void)manager.Materialize(views);
  TxnGenerator gen(11);
  auto plan = selector.BestTrack(views, txn_type);
  for (auto _ : state) {
    auto txn = gen.Generate(txn_type, db);
    Status applied =
        state.range(0) == 0
            ? manager.ApplyTransaction(*txn, txn_type, plan->track)
            : manager.ApplyTransactionByRecompute(*txn, txn_type);
    benchmark::DoNotOptimize(applied.ok());
  }
  state.SetLabel(state.range(0) == 0 ? "incremental" : "recompute");
}
BENCHMARK(BM_IncrementalVsRecompute)->Arg(0)->Arg(1);

}  // namespace
}  // namespace auxview

int main(int argc, char** argv) {
  return auxview::bench::BenchMain("s6_vs_recompute", argc, argv,
                                   [] { auxview::PrintResult(); });
}
