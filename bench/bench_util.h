#ifndef AUXVIEW_BENCH_BENCH_UTIL_H_
#define AUXVIEW_BENCH_BENCH_UTIL_H_

// Shared helpers for the reproduction benchmarks: building the paper's
// ProblemDept DAG, locating the groups the paper names N1..N6 (Figure 2),
// and the JSON reporting harness. Every bench runs through BenchMain, which
// captures each PrintHeader/PrintRow table (the predicted-vs-measured
// paper numbers), the process-wide metrics snapshot (page I/O, maintenance
// and optimizer counters) and wall time into BENCH_<name>.json — see
// docs/BENCHMARKING.md for the schema and how to read it.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "auxview.h"

namespace auxview {
namespace bench {

/// Accumulates the tables a bench prints so BenchMain can serialize them.
/// PrintHeader opens a section; PrintRow appends to the current one.
struct JsonReport {
  struct Table {
    std::string title;
    std::vector<std::string> columns;
    std::vector<std::pair<std::string, std::vector<double>>> rows;
  };
  std::vector<Table> tables;

  static JsonReport& Global() {
    static JsonReport* report = new JsonReport();
    return *report;
  }
};

/// The paper's named equivalence nodes in the ProblemDept DAG.
struct PaperGroups {
  GroupId n1 = -1;  // Select (root)
  GroupId n2 = -1;  // the Select's input (Aggregate/Join alternatives)
  GroupId n3 = -1;  // Aggregate(Emp BY DName) — SumOfSals
  GroupId n4 = -1;  // Join(Emp, Dept)
  GroupId emp = -1;
  GroupId dept = -1;
};

inline PaperGroups FindPaperGroups(const Memo& memo) {
  PaperGroups out;
  out.n1 = memo.root();
  for (GroupId g : memo.LiveGroups()) {
    const MemoGroup& grp = memo.group(g);
    if (grp.is_leaf) {
      if (grp.table == "Emp") out.emp = g;
      if (grp.table == "Dept") out.dept = g;
      continue;
    }
    for (int eid : grp.exprs) {
      const MemoExpr& e = memo.expr(eid);
      if (e.dead) continue;
      if (e.kind() == OpKind::kAggregate &&
          e.op->group_by() == std::vector<std::string>{"DName"}) {
        out.n3 = g;
      }
      if (e.kind() == OpKind::kAggregate && e.op->group_by().size() == 2) {
        out.n2 = g;
      }
      if (e.kind() == OpKind::kJoin) {
        bool leaf_join = true;
        for (GroupId in : e.inputs) {
          if (!memo.group(memo.Find(in)).is_leaf) leaf_join = false;
        }
        if (leaf_join) out.n4 = g;
      }
    }
  }
  return out;
}

/// Built ProblemDept environment shared by the T1-T4 benches.
struct PaperSetup {
  std::unique_ptr<EmpDeptWorkload> workload;
  std::unique_ptr<Memo> memo;
  std::unique_ptr<ViewSelector> selector;
  PaperGroups groups;
};

inline PaperSetup MakePaperSetup() {
  PaperSetup setup;
  setup.workload = std::make_unique<EmpDeptWorkload>(EmpDeptConfig{});
  auto tree = setup.workload->ProblemDeptTree();
  if (!tree.ok()) {
    std::fprintf(stderr, "tree: %s\n", tree.status().ToString().c_str());
    std::abort();
  }
  auto memo = BuildExpandedMemo(*tree, setup.workload->catalog());
  if (!memo.ok()) {
    std::fprintf(stderr, "memo: %s\n", memo.status().ToString().c_str());
    std::abort();
  }
  setup.memo = std::make_unique<Memo>(std::move(memo).value());
  setup.selector = std::make_unique<ViewSelector>(
      setup.memo.get(), &setup.workload->catalog());
  setup.groups = FindPaperGroups(*setup.memo);
  return setup;
}

/// Prints a row of a fixed-width table and records it in the JSON report.
inline void PrintRow(const std::string& label,
                     const std::vector<double>& values) {
  std::printf("  %-34s", label.c_str());
  for (double v : values) std::printf(" %10.4g", v);
  std::printf("\n");
  JsonReport& report = JsonReport::Global();
  if (report.tables.empty()) report.tables.emplace_back();
  report.tables.back().rows.emplace_back(label, values);
}

/// Prints a table header and opens a new section in the JSON report.
inline void PrintHeader(const std::string& title,
                        const std::vector<std::string>& columns) {
  std::printf("\n%s\n", title.c_str());
  std::printf("  %-34s", "");
  for (const std::string& c : columns) std::printf(" %10s", c.c_str());
  std::printf("\n");
  JsonReport::Table table;
  table.title = title;
  table.columns = columns;
  JsonReport::Global().tables.push_back(std::move(table));
}

/// Prints an "optimizer scaling" table: the same Exhaustive enumeration run
/// sequentially with the track-cost cache disabled (the pre-cache
/// baseline), sequentially with the cache, and with 8 worker threads. Each
/// configuration gets a fresh ViewSelector and runs Exhaustive twice:
/// `cold_us` is the first call (empty cache), `warm_us` the repeat — the
/// common production shape, since sweeps and repeated optimizations reuse
/// one selector. `repeat_x` is cold_us/warm_us and `hit_pct` the warm
/// call's cache hit rate (~100 with the cache, 0 without). Timings come
/// from the optimizer.enumerate_us histogram delta around each call. The
/// `viewsets` column is identical across rows by construction (the
/// enumeration is bit-identical for every configuration); the timing-
/// derived columns are excluded from the golden-table comparison
/// (tools/check_bench_tables.py).
inline void PrintOptimizerScaling(const Memo* memo, const Catalog* catalog,
                                  const std::vector<TransactionType>& txns,
                                  const OptimizeOptions& base,
                                  const std::string& title) {
  struct Config {
    const char* label;
    int threads;
    bool cache;
  };
  static constexpr Config kConfigs[] = {
      {"1 thread, cache off", 1, false},
      {"1 thread, cache on", 1, true},
      {"8 threads, cache on", 8, true},
  };
  obs::Histogram* enum_us =
      obs::MetricsRegistry::Global().GetHistogram("optimizer.enumerate_us");
  PrintHeader(title, {"cold_us", "warm_us", "repeat_x", "viewsets",
                      "hit_pct"});
  double first_cost = 0;
  ViewSet first_views;
  bool have_first = false;
  for (const Config& config : kConfigs) {
    ViewSelector selector(memo, catalog);
    OptimizeOptions options = base;
    options.threads = config.threads;
    options.use_track_cache = config.cache;
    double cold_us = 0;
    double warm_us = 0;
    StatusOr<OptimizeResult> result = OptimizeResult{};
    for (int call = 0; call < 2; ++call) {
      const double before = enum_us->sum();
      result = selector.Exhaustive(txns, options);
      (call == 0 ? cold_us : warm_us) = enum_us->sum() - before;
      if (!result.ok()) break;
    }
    if (!result.ok()) {
      std::printf("  %-34s %s\n", config.label,
                  result.status().ToString().c_str());
      continue;
    }
    if (!have_first) {
      have_first = true;
      first_cost = result->weighted_cost;
      first_views = result->views;
    } else if (result->weighted_cost != first_cost ||
               result->views != first_views) {
      // Never expected: the parallel/cached walks are bit-identical to the
      // sequential one. A visible marker beats silently wrong timings.
      std::printf("  %-34s DIVERGED from the sequential result\n",
                  config.label);
    }
    const int64_t lookups =
        result->trackcache_hits + result->trackcache_misses;
    const double hit_pct =
        lookups > 0 ? 100.0 * static_cast<double>(result->trackcache_hits) /
                          static_cast<double>(lookups)
                    : 0.0;
    PrintRow(config.label,
             {cold_us, warm_us, warm_us > 0 ? cold_us / warm_us : 0,
              static_cast<double>(result->viewsets_costed), hit_pct});
  }
}

/// Prints a "propagation scaling" table: the same maintenance workload run
/// with 1, 2, 4 and 8 delta-propagation workers (MaintainOptions::threads).
/// Each row builds a fresh database, materializes every non-leaf group and
/// applies two transactions of the first declared type: `cold_us` is the
/// first (empty fetch cache and cold stats), `warm_us` the repeat. The
/// cost-model columns — charged page I/Os (`cold_ios`, `warm_ios`) and the
/// worker-pool task/wave counts (`tasks`, `waves`) — are identical across
/// rows by construction (propagation is bit-identical for every thread
/// count; docs/CONCURRENCY.md); only the wall-clock `_us` columns may move,
/// and those are excluded from the golden-table comparison
/// (tools/check_bench_tables.py). A DIVERGED marker replaces a row whose
/// final table fingerprints differ from the 1-thread run — never expected.
/// On the single-hardware-thread CI container the `_us` columns show pool
/// overhead rather than speedup (docs/EXPERIMENTS.md).
inline void PrintPropagationScaling(
    const Memo* memo, const Catalog* catalog,
    const std::function<Status(Database*)>& populate,
    const std::vector<TransactionType>& txns, const std::string& title) {
  if (txns.empty()) return;
  obs::Counter* tasks_counter =
      obs::MetricsRegistry::Global().GetCounter("maintain.pool.tasks_spawned");
  obs::Counter* waves_counter =
      obs::MetricsRegistry::Global().GetCounter("maintain.pool.waves");
  PrintHeader(title,
              {"cold_us", "warm_us", "cold_ios", "warm_ios", "tasks",
               "waves"});
  std::map<std::string, std::string> baseline;
  for (int threads : {1, 2, 4, 8}) {
    Database db;
    Status populated = populate(&db);
    if (!populated.ok()) {
      std::printf("  populate: %s\n", populated.ToString().c_str());
      return;
    }
    ViewSet views = {memo->root()};
    for (GroupId g : memo->NonLeafGroups()) views.insert(g);
    MaintainOptions options;
    options.threads = threads;
    ViewManager mgr(memo, catalog, &db, options);
    Status materialized = mgr.Materialize(views);
    if (!materialized.ok()) {
      std::printf("  materialize: %s\n", materialized.ToString().c_str());
      return;
    }
    ViewSelector selector(memo, catalog);
    auto plan = selector.BestTrack(views, txns[0]);
    if (!plan.ok()) {
      std::printf("  track: %s\n", plan.status().ToString().c_str());
      return;
    }
    TxnGenerator gen(20260808);
    double cold_us = 0, warm_us = 0;
    double cold_ios = 0, warm_ios = 0;
    double tasks = 0, waves = 0;
    bool failed = false;
    for (int call = 0; call < 2; ++call) {
      auto txn = gen.Generate(txns[0], db);
      if (!txn.ok()) {
        std::printf("  generate: %s\n", txn.status().ToString().c_str());
        failed = true;
        break;
      }
      const int64_t ios_before = db.counter().total();
      const int64_t tasks_before = tasks_counter->value();
      const int64_t waves_before = waves_counter->value();
      const auto start = std::chrono::steady_clock::now();
      Status applied = mgr.ApplyTransaction(*txn, txns[0], plan->track);
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      if (!applied.ok()) {
        std::printf("  apply: %s\n", applied.ToString().c_str());
        failed = true;
        break;
      }
      (call == 0 ? cold_us : warm_us) = us;
      (call == 0 ? cold_ios : warm_ios) =
          static_cast<double>(db.counter().total() - ios_before);
      tasks += static_cast<double>(tasks_counter->value() - tasks_before);
      waves += static_cast<double>(waves_counter->value() - waves_before);
    }
    if (failed) continue;
    std::map<std::string, std::string> state;
    for (const std::string& name : db.TableNames()) {
      state[name] = db.FindTable(name)->Fingerprint();
    }
    const std::string label = std::to_string(threads) +
                              (threads == 1 ? " thread" : " threads");
    if (baseline.empty()) {
      baseline = std::move(state);
    } else if (state != baseline) {
      // Never expected: propagation is bit-identical for every thread
      // count. A visible marker beats silently wrong timings.
      std::printf("  %-34s DIVERGED from the 1-thread state\n",
                  label.c_str());
      continue;
    }
    PrintRow(label, {cold_us, warm_us, cold_ios, warm_ios, tasks, waves});
  }
}

/// Serializes the report (tables + metrics snapshot + wall time) as the
/// BENCH_<name>.json record described in docs/BENCHMARKING.md.
inline std::string ReportToJson(const std::string& name,
                                const JsonReport& report,
                                const obs::MetricsSnapshot& snapshot,
                                double wall_seconds, double table_seconds) {
  std::string out = "{\"schema_version\": 1";
  out += ", \"bench\": " + obs::JsonString(name);
  out += ", \"wall_time_seconds\": " + obs::JsonNumber(wall_seconds);
  out += ", \"table_time_seconds\": " + obs::JsonNumber(table_seconds);
  out += ", \"page_reads\": " +
         std::to_string(snapshot.CounterOr("storage.page_reads"));
  out += ", \"page_writes\": " +
         std::to_string(snapshot.CounterOr("storage.page_writes"));
  out += ", \"tables\": [";
  for (size_t t = 0; t < report.tables.size(); ++t) {
    const JsonReport::Table& table = report.tables[t];
    if (t > 0) out += ", ";
    out += "{\"title\": " + obs::JsonString(table.title) + ", \"columns\": [";
    for (size_t c = 0; c < table.columns.size(); ++c) {
      if (c > 0) out += ", ";
      out += obs::JsonString(table.columns[c]);
    }
    out += "], \"rows\": [";
    for (size_t r = 0; r < table.rows.size(); ++r) {
      if (r > 0) out += ", ";
      out += "{\"label\": " + obs::JsonString(table.rows[r].first) +
             ", \"values\": [";
      for (size_t v = 0; v < table.rows[r].second.size(); ++v) {
        if (v > 0) out += ", ";
        out += obs::JsonNumber(table.rows[r].second[v]);
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "], \"metrics\": " + snapshot.ToJson();
  out += "}";
  return out;
}

/// Shared main for every bench binary: runs the table-printing body, then
/// the registered google-benchmark timings, then writes BENCH_<name>.json
/// into $AUXVIEW_BENCH_JSON_DIR (default: the working directory).
inline int BenchMain(const std::string& name, int argc, char** argv,
                     const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto tables_done = std::chrono::steady_clock::now();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Model-only benches never touch storage; registering the page-I/O
  // counters here keeps them in every report (as 0) so consumers can rely
  // on their presence.
  obs::MetricsRegistry::Global().GetCounter("storage.page_reads");
  obs::MetricsRegistry::Global().GetCounter("storage.page_writes");
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  const double table_wall =
      std::chrono::duration<double>(tables_done - start).count();
  const std::string json = ReportToJson(name, JsonReport::Global(), snapshot,
                                        wall, table_wall);

  const char* dir = std::getenv("AUXVIEW_BENCH_JSON_DIR");
  std::string path = dir != nullptr && dir[0] != '\0'
                         ? std::string(dir) + "/BENCH_" + name + ".json"
                         : "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}

}  // namespace bench
}  // namespace auxview

#endif  // AUXVIEW_BENCH_BENCH_UTIL_H_
