#ifndef AUXVIEW_BENCH_BENCH_UTIL_H_
#define AUXVIEW_BENCH_BENCH_UTIL_H_

// Shared helpers for the reproduction benchmarks: building the paper's
// ProblemDept DAG and locating the groups the paper names N1..N6
// (Figure 2).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "auxview.h"

namespace auxview {
namespace bench {

/// The paper's named equivalence nodes in the ProblemDept DAG.
struct PaperGroups {
  GroupId n1 = -1;  // Select (root)
  GroupId n2 = -1;  // the Select's input (Aggregate/Join alternatives)
  GroupId n3 = -1;  // Aggregate(Emp BY DName) — SumOfSals
  GroupId n4 = -1;  // Join(Emp, Dept)
  GroupId emp = -1;
  GroupId dept = -1;
};

inline PaperGroups FindPaperGroups(const Memo& memo) {
  PaperGroups out;
  out.n1 = memo.root();
  for (GroupId g : memo.LiveGroups()) {
    const MemoGroup& grp = memo.group(g);
    if (grp.is_leaf) {
      if (grp.table == "Emp") out.emp = g;
      if (grp.table == "Dept") out.dept = g;
      continue;
    }
    for (int eid : grp.exprs) {
      const MemoExpr& e = memo.expr(eid);
      if (e.dead) continue;
      if (e.kind() == OpKind::kAggregate &&
          e.op->group_by() == std::vector<std::string>{"DName"}) {
        out.n3 = g;
      }
      if (e.kind() == OpKind::kAggregate && e.op->group_by().size() == 2) {
        out.n2 = g;
      }
      if (e.kind() == OpKind::kJoin) {
        bool leaf_join = true;
        for (GroupId in : e.inputs) {
          if (!memo.group(memo.Find(in)).is_leaf) leaf_join = false;
        }
        if (leaf_join) out.n4 = g;
      }
    }
  }
  return out;
}

/// Built ProblemDept environment shared by the T1-T4 benches.
struct PaperSetup {
  std::unique_ptr<EmpDeptWorkload> workload;
  std::unique_ptr<Memo> memo;
  std::unique_ptr<ViewSelector> selector;
  PaperGroups groups;
};

inline PaperSetup MakePaperSetup() {
  PaperSetup setup;
  setup.workload = std::make_unique<EmpDeptWorkload>(EmpDeptConfig{});
  auto tree = setup.workload->ProblemDeptTree();
  if (!tree.ok()) {
    std::fprintf(stderr, "tree: %s\n", tree.status().ToString().c_str());
    std::abort();
  }
  auto memo = BuildExpandedMemo(*tree, setup.workload->catalog());
  if (!memo.ok()) {
    std::fprintf(stderr, "memo: %s\n", memo.status().ToString().c_str());
    std::abort();
  }
  setup.memo = std::make_unique<Memo>(std::move(memo).value());
  setup.selector = std::make_unique<ViewSelector>(
      setup.memo.get(), &setup.workload->catalog());
  setup.groups = FindPaperGroups(*setup.memo);
  return setup;
}

/// Prints a row of a fixed-width table.
inline void PrintRow(const std::string& label,
                     const std::vector<double>& values) {
  std::printf("  %-34s", label.c_str());
  for (double v : values) std::printf(" %10.4g", v);
  std::printf("\n");
}

inline void PrintHeader(const std::string& title,
                        const std::vector<std::string>& columns) {
  std::printf("\n%s\n", title.c_str());
  std::printf("  %-34s", "");
  for (const std::string& c : columns) std::printf(" %10s", c.c_str());
  std::printf("\n");
}

}  // namespace bench
}  // namespace auxview

#endif  // AUXVIEW_BENCH_BENCH_UTIL_H_
