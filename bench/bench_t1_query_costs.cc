// Reproduces the paper's Section 3.6 query-cost table (T1): the cost in
// page I/Os of each query of Example 3.2 under the additional view sets
// {}, {N3} and {N4}. Paper values:
//
//            {}   {N3}  {N4}
//   Q2Ld     11     2    11
//   Q2Re      2     2     2
//   Q3e      13    13    11
//   Q4e      11     -    11
//   Q5Ld     11    11    11
//   Q5Re      2     2     2
//
// ("-" marks a query that is not posed under that view set: with N3
// materialized, SUM is self-maintained from the view's old value.)
//
// The google-benchmark section times the query-costing machinery itself.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace auxview {
namespace {

bench::PaperSetup& Setup() {
  static bench::PaperSetup setup = bench::MakePaperSetup();
  return setup;
}

void PrintTable() {
  auto& s = Setup();
  StatsAnalysis stats(s.memo.get(), &s.workload->catalog());
  FdAnalysis fds(s.memo.get(), &s.workload->catalog());
  QueryCoster coster(s.memo.get(), &s.workload->catalog(), &stats, &fds,
                     IoCostModel());
  const auto& g = s.groups;
  const std::vector<std::string> dname = {"DName"};
  const std::vector<std::string> group = {"DName", "Budget"};
  const std::vector<std::set<GroupId>> sets = {{}, {g.n3}, {g.n4}};

  auto row = [&](const char* label, GroupId on,
                 const std::vector<std::string>& attrs) {
    std::vector<double> values;
    for (const auto& views : sets) {
      values.push_back(coster.LookupCost(on, attrs, 1, views));
    }
    bench::PrintRow(label, values);
  };

  bench::PrintHeader(
      "T1: query costs (page I/Os) under additional view sets "
      "(paper Section 3.6, first table)",
      {"{}", "{N3}", "{N4}"});
  row("Q2Ld  lookup N3 by DName", g.n3, dname);
  row("Q2Re  lookup Dept by DName", g.dept, dname);
  row("Q3e   lookup N4 by group key", g.n4, group);
  row("Q4e   lookup Emp by DName", g.emp, dname);
  row("Q5Ld  lookup Emp by DName", g.emp, dname);
  row("Q5Re  lookup Dept by DName", g.dept, dname);
  std::printf(
      "  (Q4e is not posed under {N3}: SUM self-maintains from the view.)\n");
}

void BM_LookupCostMaterialized(benchmark::State& state) {
  auto& s = Setup();
  StatsAnalysis stats(s.memo.get(), &s.workload->catalog());
  FdAnalysis fds(s.memo.get(), &s.workload->catalog());
  QueryCoster coster(s.memo.get(), &s.workload->catalog(), &stats, &fds,
                     IoCostModel());
  const std::set<GroupId> views = {s.groups.n3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        coster.LookupCost(s.groups.n3, {"DName"}, 1, views));
  }
}
BENCHMARK(BM_LookupCostMaterialized);

void BM_LookupCostRecursive(benchmark::State& state) {
  auto& s = Setup();
  StatsAnalysis stats(s.memo.get(), &s.workload->catalog());
  FdAnalysis fds(s.memo.get(), &s.workload->catalog());
  QueryCoster coster(s.memo.get(), &s.workload->catalog(), &stats, &fds,
                     IoCostModel());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        coster.LookupCost(s.groups.n4, {"DName", "Budget"}, 1, {}));
  }
}
BENCHMARK(BM_LookupCostRecursive);

}  // namespace
}  // namespace auxview

int main(int argc, char** argv) {
  return auxview::bench::BenchMain("t1_query_costs", argc, argv,
                                   [] { auxview::PrintTable(); });
}
