// Reproduces the paper's Figures 1 and 2: the two expression trees for
// ProblemDept, and the expression DAG with six equivalence nodes (N1..N6)
// and five operation nodes (E1..E5). Also prints the Graphviz form and
// times DAG construction.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "memo/dot.h"

namespace auxview {
namespace {

void PrintFigures() {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto right = workload.ProblemDeptTree();
  auto left = workload.ProblemDeptLeftTree();
  if (!right.ok() || !left.ok()) return;

  std::printf("\nF1: the two expression trees for ProblemDept (Figure 1)\n");
  std::printf("\n  left tree:\n%s", (*left)->TreeToString().c_str());
  std::printf("\n  right tree:\n%s", (*right)->TreeToString().c_str());

  Memo memo;
  if (!memo.AddTree(*right).ok()) return;
  auto rules = AggregationOnlyRuleSet();
  if (!ExpandMemo(&memo, workload.catalog(), rules).ok()) return;

  std::printf(
      "\nF2: expression DAG (Figure 2) — %zu equivalence nodes, "
      "%zu operation nodes\n\n%s",
      memo.LiveGroups().size(), memo.LiveExprs().size(),
      memo.ToString().c_str());

  std::printf("\nGraphviz (render with `dot -Tpng`):\n%s",
              MemoToDot(memo).c_str());

  // With the full default rule set, join commutation adds operation nodes
  // but no equivalence nodes.
  auto full = BuildExpandedMemo(*right, workload.catalog());
  if (full.ok()) {
    std::printf(
        "\nFull rule set: %zu equivalence nodes, %zu operation nodes "
        "(commuted join variants added)\n",
        full->LiveGroups().size(), full->LiveExprs().size());
  }
}

void BM_BuildFigure2Dag(benchmark::State& state) {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  auto rules = AggregationOnlyRuleSet();
  for (auto _ : state) {
    Memo memo;
    benchmark::DoNotOptimize(memo.AddTree(*tree).ok());
    benchmark::DoNotOptimize(
        ExpandMemo(&memo, workload.catalog(), rules).ok());
  }
}
BENCHMARK(BM_BuildFigure2Dag);

}  // namespace
}  // namespace auxview

int main(int argc, char** argv) {
  return auxview::bench::BenchMain("f1_f2_dag", argc, argv,
                                   [] { auxview::PrintFigures(); });
}
