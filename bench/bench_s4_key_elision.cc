// S4 ablation: the key-based query elision (the paper's Q3d = 0, Section
// 3.6: "Since Dname is a key for the Dept relation, the result propagated
// up along E5 and N4 contains all the tuples in the group"). We compare
// per-transaction costs with the completeness analysis on and off, on the
// ProblemDept example and on aggregate-chain views where every join is a
// key join.

#include <benchmark/benchmark.h>

#include <chrono>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "workload/chain.h"

namespace auxview {
namespace {

/// Shard scaling: the same recorded transaction stream replayed against
/// databases with 1, 2, 4 and 8 hash shards. The cost-model columns —
/// charged page I/Os and the routing counters (`sharded` = transactions
/// that ran the per-shard path, `fallback` = global path) — are identical
/// across rows except for the routing split itself, which is 0/0 at 1
/// shard (nothing routes) and all-sharded beyond (docs/SHARDING.md); the
/// wall-clock `stream_us` column is excluded from the golden-table
/// comparison (tools/check_bench_tables.py). A DIVERGED marker replaces a
/// row whose final fingerprints differ from the 1-shard run — never
/// expected. The stream is recorded once on a 1-shard database because
/// TxnGenerator samples rows in scan order, which sharding permutes.
void PrintShardScaling() {
  auto setup = bench::MakePaperSetup();
  const Memo& memo = *setup.memo;
  const Catalog& catalog = setup.workload->catalog();
  ViewSet views = {memo.root()};
  for (GroupId g : memo.NonLeafGroups()) views.insert(g);

  constexpr int kSteps = 8;
  const std::vector<TransactionType> txns = {setup.workload->TxnModEmp(),
                                             setup.workload->TxnModDept()};
  std::vector<std::pair<ConcreteTxn, const TransactionType*>> stream;
  {
    Database db;
    if (!setup.workload->Populate(&db).ok()) return;
    TxnGenerator gen(20260808);
    for (int step = 0; step < kSteps; ++step) {
      const TransactionType& type =
          txns[static_cast<size_t>(step) % txns.size()];
      auto txn = gen.Generate(type, db);
      if (!txn.ok()) {
        std::printf("  generate: %s\n", txn.status().ToString().c_str());
        return;
      }
      // Keep the generator's view of the database in sync with the stream.
      for (const TableUpdate& update : txn->updates) {
        Table* t = db.FindTable(update.relation);
        if (t == nullptr) return;
        for (const auto& [row, count] : update.inserts) {
          if (!t->Apply(row, count).ok()) return;
        }
        for (const auto& [row, count] : update.deletes) {
          if (!t->Apply(row, -count).ok()) return;
        }
        for (const auto& [old_row, new_row] : update.modifies) {
          const int64_t c = t->CountOf(old_row);
          if (!t->Apply(old_row, -c).ok() || !t->Apply(new_row, c).ok()) {
            return;
          }
        }
      }
      stream.emplace_back(std::move(*txn),
                          &txns[static_cast<size_t>(step) % txns.size()]);
    }
  }

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter* sharded_c = reg.GetCounter("maintain.shard.sharded_txns");
  obs::Counter* fallback_c = reg.GetCounter("maintain.shard.fallback_txns");
  bench::PrintHeader(
      "S4: shard scaling on ProblemDept (8-txn stream, identical I/O)",
      {"stream_us", "ios", "sharded", "fallback"});
  std::map<std::string, std::string> baseline;
  for (int shards : {1, 2, 4, 8}) {
    Database db;
    db.set_shard_count(shards);
    if (!setup.workload->Populate(&db).ok()) return;
    MaintainOptions options;
    options.threads = shards > 1 ? 4 : 1;
    ViewManager mgr(&memo, &catalog, &db, options);
    if (!mgr.Materialize(views).ok()) return;
    ViewSelector selector(&memo, &catalog);
    const int64_t ios_before = db.counter().total();
    const int64_t sharded_before = sharded_c->value();
    const int64_t fallback_before = fallback_c->value();
    const auto start = std::chrono::steady_clock::now();
    bool failed = false;
    for (const auto& [txn, type] : stream) {
      auto plan = selector.BestTrack(views, *type);
      if (!plan.ok()) {
        std::printf("  track: %s\n", plan.status().ToString().c_str());
        failed = true;
        break;
      }
      Status applied = mgr.ApplyTransaction(txn, *type, plan->track);
      if (!applied.ok()) {
        std::printf("  apply: %s\n", applied.ToString().c_str());
        failed = true;
        break;
      }
    }
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (failed) continue;
    std::map<std::string, std::string> state;
    for (const std::string& name : db.TableNames()) {
      state[name] = db.FindTable(name)->Fingerprint();
    }
    const std::string label =
        std::to_string(shards) + (shards == 1 ? " shard" : " shards");
    if (baseline.empty()) {
      baseline = state;
    } else if (state != baseline) {
      // Never expected: sharded maintenance is bit-identical to the
      // 1-shard run. A visible marker beats silently wrong timings.
      std::printf("  %-34s DIVERGED from the 1-shard state\n", label.c_str());
      continue;
    }
    bench::PrintRow(
        label,
        {us, static_cast<double>(db.counter().total() - ios_before),
         static_cast<double>(sharded_c->value() - sharded_before),
         static_cast<double>(fallback_c->value() - fallback_before)});
  }
}

void PrintResult() {
  {
    auto setup = bench::MakePaperSetup();
    bench::PrintHeader(
        "S4: key-based elision on ProblemDept (min track cost per txn)",
        {"with", "without", "saved"});
    for (const TransactionType& txn :
         {setup.workload->TxnModEmp(), setup.workload->TxnModDept()}) {
      for (const ViewSet& extra : std::vector<ViewSet>{
               {}, {setup.groups.n4}}) {
        ViewSet views = extra;
        views.insert(setup.groups.n1);
        setup.selector->delta().set_use_completeness(true);
        auto with = setup.selector->BestTrack(views, txn);
        setup.selector->delta().set_use_completeness(false);
        auto without = setup.selector->BestTrack(views, txn);
        setup.selector->delta().set_use_completeness(true);
        if (!with.ok() || !without.ok()) continue;
        bench::PrintRow(ViewSetToString(extra) + "  " + txn.name,
                        {with->cost.total(), without->cost.total(),
                         without->cost.total() - with->cost.total()});
      }
    }
    std::printf(
        "  (>Dept rows change: without the elision the aggregate re-reads "
        "its affected groups — the paper's Q3d stops being free.)\n");
  }

  // Chains of key joins: the deeper the chain, the more aggregates benefit.
  for (int k : {3, 4}) {
    ChainConfig config;
    config.num_relations = k;
    config.with_aggregate = true;
    ChainWorkload workload{config};
    auto tree = workload.ChainViewTree();
    if (!tree.ok()) continue;
    auto memo = BuildExpandedMemo(*tree, workload.catalog());
    if (!memo.ok()) continue;
    ViewSelector selector(&*memo, &workload.catalog());
    bench::PrintHeader(
        "S4: optimizer cost on aggregate-chain-" + std::to_string(k),
        {"with", "without", "ratio"});
    selector.delta().set_use_completeness(true);
    auto with = selector.Exhaustive(workload.AllTxns());
    selector.delta().set_use_completeness(false);
    auto without = selector.Exhaustive(workload.AllTxns());
    selector.delta().set_use_completeness(true);
    if (!with.ok() || !without.ok()) continue;
    bench::PrintRow("optimal weighted cost",
                    {with->weighted_cost, without->weighted_cost,
                     without->weighted_cost / with->weighted_cost});
  }

  PrintShardScaling();
}

void BM_BestTrackElision(benchmark::State& state) {
  static bench::PaperSetup setup = bench::MakePaperSetup();
  setup.selector->delta().set_use_completeness(state.range(0) == 1);
  const ViewSet views = {setup.groups.n1, setup.groups.n4};
  const TransactionType txn = setup.workload->TxnModDept();
  for (auto _ : state) {
    auto plan = setup.selector->BestTrack(views, txn);
    benchmark::DoNotOptimize(plan.ok());
  }
  setup.selector->delta().set_use_completeness(true);
}
BENCHMARK(BM_BestTrackElision)->Arg(0)->Arg(1);

}  // namespace
}  // namespace auxview

int main(int argc, char** argv) {
  return auxview::bench::BenchMain("s4_key_elision", argc, argv,
                                   [] { auxview::PrintResult(); });
}
