// S4 ablation: the key-based query elision (the paper's Q3d = 0, Section
// 3.6: "Since Dname is a key for the Dept relation, the result propagated
// up along E5 and N4 contains all the tuples in the group"). We compare
// per-transaction costs with the completeness analysis on and off, on the
// ProblemDept example and on aggregate-chain views where every join is a
// key join.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/chain.h"

namespace auxview {
namespace {

void PrintResult() {
  {
    auto setup = bench::MakePaperSetup();
    bench::PrintHeader(
        "S4: key-based elision on ProblemDept (min track cost per txn)",
        {"with", "without", "saved"});
    for (const TransactionType& txn :
         {setup.workload->TxnModEmp(), setup.workload->TxnModDept()}) {
      for (const ViewSet& extra : std::vector<ViewSet>{
               {}, {setup.groups.n4}}) {
        ViewSet views = extra;
        views.insert(setup.groups.n1);
        setup.selector->delta().set_use_completeness(true);
        auto with = setup.selector->BestTrack(views, txn);
        setup.selector->delta().set_use_completeness(false);
        auto without = setup.selector->BestTrack(views, txn);
        setup.selector->delta().set_use_completeness(true);
        if (!with.ok() || !without.ok()) continue;
        bench::PrintRow(ViewSetToString(extra) + "  " + txn.name,
                        {with->cost.total(), without->cost.total(),
                         without->cost.total() - with->cost.total()});
      }
    }
    std::printf(
        "  (>Dept rows change: without the elision the aggregate re-reads "
        "its affected groups — the paper's Q3d stops being free.)\n");
  }

  // Chains of key joins: the deeper the chain, the more aggregates benefit.
  for (int k : {3, 4}) {
    ChainConfig config;
    config.num_relations = k;
    config.with_aggregate = true;
    ChainWorkload workload{config};
    auto tree = workload.ChainViewTree();
    if (!tree.ok()) continue;
    auto memo = BuildExpandedMemo(*tree, workload.catalog());
    if (!memo.ok()) continue;
    ViewSelector selector(&*memo, &workload.catalog());
    bench::PrintHeader(
        "S4: optimizer cost on aggregate-chain-" + std::to_string(k),
        {"with", "without", "ratio"});
    selector.delta().set_use_completeness(true);
    auto with = selector.Exhaustive(workload.AllTxns());
    selector.delta().set_use_completeness(false);
    auto without = selector.Exhaustive(workload.AllTxns());
    selector.delta().set_use_completeness(true);
    if (!with.ok() || !without.ok()) continue;
    bench::PrintRow("optimal weighted cost",
                    {with->weighted_cost, without->weighted_cost,
                     without->weighted_cost / with->weighted_cost});
  }
}

void BM_BestTrackElision(benchmark::State& state) {
  static bench::PaperSetup setup = bench::MakePaperSetup();
  setup.selector->delta().set_use_completeness(state.range(0) == 1);
  const ViewSet views = {setup.groups.n1, setup.groups.n4};
  const TransactionType txn = setup.workload->TxnModDept();
  for (auto _ : state) {
    auto plan = setup.selector->BestTrack(views, txn);
    benchmark::DoNotOptimize(plan.ok());
  }
  setup.selector->delta().set_use_completeness(true);
}
BENCHMARK(BM_BestTrackElision)->Arg(0)->Arg(1);

}  // namespace
}  // namespace auxview

int main(int argc, char** argv) {
  return auxview::bench::BenchMain("s4_key_elision", argc, argv,
                                   [] { auxview::PrintResult(); });
}
