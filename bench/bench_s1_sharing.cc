// S1 ablation (Section 3.4 / 4.1): multi-query sharing along an update
// track. Identical queries generated at different operation nodes of one
// track are charged once; the paper's "suboptimal + suboptimal = optimal"
// phenomenon follows because shared work lets locally nonoptimal plans win
// globally. The bench compares per-view-set costs with sharing on and off
// and reports any view set whose *rank* changes.

#include <algorithm>

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace auxview {
namespace {

bench::PaperSetup& Setup() {
  static bench::PaperSetup setup = bench::MakePaperSetup();
  return setup;
}

void PrintResult() {
  auto& s = Setup();
  const std::vector<TransactionType> txns = {s.workload->TxnModEmp(),
                                             s.workload->TxnModDept()};
  OptimizeOptions with_sharing;
  with_sharing.keep_all = true;
  OptimizeOptions no_sharing = with_sharing;
  no_sharing.cost.share_queries = false;

  auto shared = s.selector->Exhaustive(txns, with_sharing);
  auto unshared = s.selector->Exhaustive(txns, no_sharing);
  if (!shared.ok() || !unshared.ok()) return;

  bench::PrintHeader(
      "S1: weighted cost per view set, with and without multi-query "
      "sharing (paper Section 3.4)",
      {"shared", "unshared", "delta"});
  for (size_t i = 0; i < shared->all_costs.size(); ++i) {
    const auto& [views, cost] = shared->all_costs[i];
    const double other = unshared->all_costs[i].second;
    bench::PrintRow(ViewSetToString(views), {cost, other, other - cost});
  }
  std::printf(
      "\n  optimum with sharing: %s (%.4g); without: %s (%.4g)\n",
      ViewSetToString(shared->views).c_str(), shared->weighted_cost,
      ViewSetToString(unshared->views).c_str(), unshared->weighted_cost);
  std::printf(
      "  sharing helps exactly the view sets whose tracks pose the same "
      "lookup from two operation nodes (e.g. {N3, N4} under >Emp).\n");
}

void BM_ExhaustiveSharing(benchmark::State& state) {
  auto& s = Setup();
  const std::vector<TransactionType> txns = {s.workload->TxnModEmp(),
                                             s.workload->TxnModDept()};
  OptimizeOptions options;
  options.cost.share_queries = state.range(0) == 1;
  for (auto _ : state) {
    auto result = s.selector->Exhaustive(txns, options);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_ExhaustiveSharing)->Arg(0)->Arg(1);

}  // namespace
}  // namespace auxview

int main(int argc, char** argv) {
  return auxview::bench::BenchMain("s1_sharing", argc, argv,
                                   [] { auxview::PrintResult(); });
}
