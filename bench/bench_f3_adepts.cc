// Reproduces the paper's Figure 3 / Example 3.1 (ADeptsStatus): the
// expression tree that is optimal for evaluating the view as a query
// differs from the one worth materializing for maintenance. With updates
// only to ADepts, the optimizer must choose to materialize
// V1 = Join(Aggregate(Emp BY DName), Dept): an ADepts update then needs a
// single lookup into V1, and V1 itself never changes.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace auxview {
namespace {

struct F3Setup {
  std::unique_ptr<EmpDeptWorkload> workload;
  std::unique_ptr<Memo> memo;
  std::unique_ptr<ViewSelector> selector;
};

F3Setup& Setup() {
  static F3Setup* setup = [] {
    auto* s = new F3Setup;
    EmpDeptConfig config;
    config.with_adepts = true;
    s->workload = std::make_unique<EmpDeptWorkload>(config);
    auto tree = s->workload->ADeptsStatusTree();
    auto memo = BuildExpandedMemo(*tree, s->workload->catalog());
    s->memo = std::make_unique<Memo>(std::move(memo).value());
    s->selector = std::make_unique<ViewSelector>(s->memo.get(),
                                                 &s->workload->catalog());
    return s;
  }();
  return *setup;
}

void PrintResult() {
  auto& s = Setup();
  std::printf(
      "\nF3: ADeptsStatus (Example 3.1) — updates only to ADepts\n");
  std::printf("  DAG: %zu equivalence nodes, %zu operation nodes\n",
              s.memo->LiveGroups().size(), s.memo->LiveExprs().size());

  OptimizeOptions options;
  options.keep_all = true;
  auto result = s.selector->Exhaustive({s.workload->TxnInsertADept()},
                                       options);
  if (!result.ok()) {
    std::printf("  optimize failed: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("  chosen additional views: %s, weighted cost %.4g I/Os\n",
              ViewSetToString(result->views).c_str(), result->weighted_cost);
  for (GroupId g : result->views) {
    if (g == s.memo->root()) continue;
    auto tree = s.memo->ExtractOriginalTree(g);
    if (tree.ok()) {
      std::printf("  materialized V1 = N%d:\n%s", g,
                  (*tree)->TreeToString().c_str());
    }
  }
  // The cost of the no-additional-views strategy, for contrast.
  auto nothing = s.selector->CostViewSet({s.workload->TxnInsertADept()},
                                         {s.memo->root()});
  if (nothing.ok()) {
    std::printf(
        "  without additional views the same transaction costs %.4g I/Os "
        "(%.1fx more)\n",
        nothing->weighted_cost,
        nothing->weighted_cost / result->weighted_cost);
  }

  // Mixed-update sensitivity: as Emp/Dept updates gain weight, maintaining
  // V1 must be balanced against its benefit (the example's closing remark).
  bench::PrintHeader(
      "  ADepts-update share sweep: optimizer cost vs no-extra-views cost",
      {"optimal", "nothing", "#views"});
  for (double adepts_weight : {100.0, 10.0, 2.0, 1.0, 0.2}) {
    const std::vector<TransactionType> txns = {
        s.workload->TxnInsertADept(adepts_weight),
        s.workload->TxnModEmp(1), s.workload->TxnModDept(1)};
    auto best = s.selector->Exhaustive(txns);
    auto none = s.selector->CostViewSet(txns, {s.memo->root()});
    if (!best.ok() || !none.ok()) continue;
    bench::PrintRow("w(>ADepts) = " + std::to_string(adepts_weight),
                    {best->weighted_cost, none->weighted_cost,
                     static_cast<double>(best->views.size() - 1)});
  }

  // Enumeration wall time with/without the track-cost cache and with
  // worker threads, on the mixed-update workload (the widest track space
  // this bench exercises).
  bench::PrintOptimizerScaling(
      s.memo.get(), &s.workload->catalog(),
      {s.workload->TxnInsertADept(2), s.workload->TxnModEmp(1),
       s.workload->TxnModDept(1)},
      OptimizeOptions{}, "  F3 optimizer scaling: ADeptsStatus, 3 txns");

  // Maintenance wall time across delta-propagation worker counts on the
  // same DAG (a smaller population: each row rebuilds and re-materializes).
  {
    EmpDeptConfig config;
    config.with_adepts = true;
    config.num_depts = 50;
    config.emps_per_dept = 5;
    auto workload = std::make_shared<EmpDeptWorkload>(config);
    auto tree = workload->ADeptsStatusTree();
    if (!tree.ok()) return;
    auto memo = BuildExpandedMemo(*tree, workload->catalog());
    if (!memo.ok()) return;
    bench::PrintPropagationScaling(
        &*memo, &workload->catalog(),
        [workload](Database* db) { return workload->Populate(db); },
        {workload->TxnInsertADept()},
        "  F3 propagation scaling: >ADepts, threads 1/2/4/8");
  }
}

void BM_ExhaustiveAdeptsStatus(benchmark::State& state) {
  auto& s = Setup();
  const std::vector<TransactionType> txns = {s.workload->TxnInsertADept()};
  for (auto _ : state) {
    auto result = s.selector->Exhaustive(txns);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_ExhaustiveAdeptsStatus);

}  // namespace
}  // namespace auxview

int main(int argc, char** argv) {
  return auxview::bench::BenchMain("f3_adepts", argc, argv,
                                   [] { auxview::PrintResult(); });
}
