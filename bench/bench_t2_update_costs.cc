// Reproduces the paper's Section 3.6 view-update-cost table (T2): the page
// I/Os spent applying the deltas to the additionally materialized views.
// Paper values:
//
//                {}   {N3}  {N4}
//   >Emp          0     3     3
//   >Dept         0     0    21
//
// (N3 is untouched by >Dept; the top-level view's update cost is excluded,
// as in the paper.)

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace auxview {
namespace {

bench::PaperSetup& Setup() {
  static bench::PaperSetup setup = bench::MakePaperSetup();
  return setup;
}

void PrintTable() {
  auto& s = Setup();
  const auto& g = s.groups;
  const std::vector<ViewSet> sets = {{g.n1}, {g.n1, g.n3}, {g.n1, g.n4}};
  bench::PrintHeader(
      "T2: view-update costs (page I/Os) under additional view sets "
      "(paper Section 3.6, second table)",
      {"{}", "{N3}", "{N4}"});
  for (const TransactionType& txn :
       {s.workload->TxnModEmp(), s.workload->TxnModDept()}) {
    std::vector<double> values;
    for (const ViewSet& views : sets) {
      auto plan = s.selector->BestTrack(views, txn);
      values.push_back(plan.ok() ? plan->cost.update_cost : -1);
    }
    bench::PrintRow(txn.name, values);
  }
}

void BM_BestTrackWithUpdateCosts(benchmark::State& state) {
  auto& s = Setup();
  const ViewSet views = {s.groups.n1, s.groups.n4};
  const TransactionType txn = s.workload->TxnModDept();
  for (auto _ : state) {
    auto plan = s.selector->BestTrack(views, txn);
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_BestTrackWithUpdateCosts);

}  // namespace
}  // namespace auxview

int main(int argc, char** argv) {
  return auxview::bench::BenchMain("t2_update_costs", argc, argv,
                                   [] { auxview::PrintTable(); });
}
