// Crash-recovery soak: real process deaths against the durable delta log.
//
// Each iteration forks a child that runs a deterministic DML stream against
// a WAL-backed session and dies — either by SIGKILL at a random moment
// (covering kills mid-append, mid-fsync, mid-checkpoint-rename and
// mid-attach) or by _exit the instant an armed commit-path failpoint fires
// (pinning the crash to an exact point, torn half-frame still on disk).
// The parent then recovers from the directory the corpse left behind and
// checks the crash-consistency contract:
//
//   1. the recovered base tables are bit-identical to SOME prefix of the
//      deterministic statement stream (no partial transactions), and
//   2. that prefix covers at least every statement the child durably
//      acknowledged (a progress file fsynced after each commit — no lost
//      committed transactions under WalFsync::kCommit), and
//   3. the re-derived views pass the recompute oracle and every assertion
//      still holds.
//
// Usage:
//   crash_soak [--seconds N] [--iterations N] [--seed S] [--keep-dirs]
//
// Exit status 0 = every iteration recovered to a valid prefix.

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "auxview.h"

namespace auxview {
namespace {

struct CrashSoakOptions {
  double seconds = 20;
  int64_t iterations = 0;  // 0 = wall clock only
  uint64_t seed = 42;
  bool keep_dirs = false;
};

constexpr char kDdl[] = R"sql(
CREATE TABLE Emp (EName STRING PRIMARY KEY, DName STRING, Salary INT,
                  INDEX (DName));
CREATE TABLE Dept (DName STRING PRIMARY KEY, MName STRING, Budget INT);
CREATE VIEW SumOfSals (DName, SalSum) AS
  SELECT DName, SUM(Salary) FROM Emp GROUPBY DName;
CREATE ASSERTION DeptConstraint CHECK
  (NOT EXISTS (SELECT Dept.DName FROM Emp, Dept
               WHERE Dept.DName = Emp.DName
               GROUPBY Dept.DName, Budget
               HAVING SUM(Salary) > Budget));
)sql";

/// Commit-path points the exit-mode child crashes at, in rotation.
constexpr const char* kCrashPoints[] = {
    "wal.append.partial",   "wal.fsync.fail",
    "wal.checkpoint.mid",   "maintain.apply_base",
    "storage.table.apply",  "maintain.apply_view_delta",
};

constexpr int kMaxStreamSteps = 400;

/// The bulk-load statements, in order (part of the replayable prefix: a
/// child can die mid-load too).
std::vector<std::string> LoadStatements() {
  std::vector<std::string> out;
  for (int d = 0; d < 4; ++d) {
    const std::string dname = "d" + std::to_string(d);
    for (int k = 0; k < 3; ++k) {
      out.push_back("INSERT INTO Emp VALUES ('" + dname + "e" +
                    std::to_string(k) + "', '" + dname + "', " +
                    std::to_string(1000 + 10 * k) + ");");
    }
    out.push_back("INSERT INTO Dept VALUES ('" + dname + "', 'm" +
                  std::to_string(d) + "', 5000);");
  }
  return out;
}

std::vector<TransactionType> Workload() {
  return {SingleModifyTxn(">Emp", "Emp", {"Salary"}, 2),
          SingleModifyTxn(">Dept", "Dept", {"Budget"}, 1)};
}

/// The deterministic post-Prepare stream (same generator as the child ran).
std::string StreamStatement(Rng& rng, int64_t step) {
  const std::string dept = "d" + std::to_string(rng.Uniform(0, 3));
  switch (rng.Uniform(0, 5)) {
    case 0:
      return "UPDATE Emp SET Salary = Salary + 1 WHERE DName = '" + dept +
             "';";
    case 1:
      return "UPDATE Emp SET Salary = Salary - 1 WHERE EName = '" + dept +
             "e" + std::to_string(rng.Uniform(0, 2)) + "';";
    case 2: {
      const int64_t delta = rng.Uniform(-3, 3);
      return "UPDATE Dept SET Budget = Budget " +
             std::string(delta < 0 ? "-" : "+") + " " +
             std::to_string(delta < 0 ? -delta : delta) + " WHERE DName = '" +
             dept + "';";
    }
    case 3:
      return "INSERT INTO Emp VALUES ('probe" + std::to_string(step % 8) +
             "', '" + dept + "', " + std::to_string(rng.Uniform(1, 50)) + ");";
    case 4:
      return "DELETE FROM Emp WHERE EName = 'probe" +
             std::to_string(rng.Uniform(0, 7)) + "';";
    default:
      // Rejected by DeptConstraint: zero effect, consumes no progress.
      return "UPDATE Emp SET Salary = 99999 WHERE EName = '" + dept + "e0';";
  }
}

/// Base-table state only: views are judged by the recompute oracle instead
/// (a recovered-but-unprepared session has no view tables yet).
std::map<std::string, std::string> BaseFingerprints(Session& session) {
  std::map<std::string, std::string> out;
  for (const std::string& name : session.db().TableNames()) {
    if (name.rfind("__mv_", 0) == 0) continue;
    out[name] = session.db().FindTable(name)->Fingerprint();
  }
  return out;
}

/// Durable progress acknowledgment: the child fsyncs the count of
/// successfully committed statements after each one, so the parent has a
/// lower bound on what recovery must preserve.
class ProgressFile {
 public:
  static constexpr const char* kName = "progress";

  explicit ProgressFile(const std::string& dir)
      : fd_(::open((dir + "/" + kName).c_str(), O_CREAT | O_WRONLY, 0644)) {}
  ~ProgressFile() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Ack(uint64_t statements) {
    if (fd_ < 0) return;
    char buf[32];
    const int n = std::snprintf(buf, sizeof(buf), "%llu\n",
                                static_cast<unsigned long long>(statements));
    (void)::pwrite(fd_, buf, static_cast<size_t>(n), 0);
    (void)::fsync(fd_);
  }

  static uint64_t Read(const std::string& dir) {
    std::FILE* f = std::fopen((dir + "/" + kName).c_str(), "r");
    if (f == nullptr) return 0;
    unsigned long long v = 0;
    if (std::fscanf(f, "%llu", &v) != 1) v = 0;
    std::fclose(f);
    return v;
  }

 private:
  int fd_;
};

// ---------------------------------------------------------------------------
// Child.

/// Runs the deterministic workload until killed, crashed-by-failpoint, or
/// the stream cap. Never returns.
[[noreturn]] void RunChild(const std::string& dir, uint64_t seed,
                           const char* crash_point) {
  ProgressFile progress(dir);
  uint64_t acked = 0;

  SessionOptions options;
  options.durability.wal_dir = dir;
  options.durability.wal_fsync = WalFsync::kCommit;
  options.durability.wal_checkpoint_every = 7;  // exercise compaction too
  Session session(options);
  if (!session.Execute(kDdl).ok()) ::_exit(3);
  for (const std::string& sql : LoadStatements()) {
    if (!session.Execute(sql).ok()) ::_exit(3);
    progress.Ack(++acked);
  }
  session.DeclareWorkload(Workload());
  if (!session.Prepare().ok()) ::_exit(3);

  obs::Counter* checkpoint_failures =
      obs::MetricsRegistry::Global().GetCounter("wal.checkpoint_failures");
  if (crash_point != nullptr) {
    Rng rng(seed ^ 0x9E3779B97F4A7C15ull);
    FailpointRegistry::Global().ArmAfter(
        crash_point, static_cast<int64_t>(rng.Uniform(1, 3)));
  }

  Rng rng(seed);
  for (int64_t step = 1; step <= kMaxStreamSteps; ++step) {
    const int64_t failures_before = checkpoint_failures->value();
    auto result = session.Execute(StreamStatement(rng, step));
    if (!result.ok()) {
      // The armed point fired mid-commit: die on the spot, leaving whatever
      // the log's failure path left durable (torn frame, abort record).
      ::_exit(42);
    }
    if (checkpoint_failures->value() != failures_before) {
      // The armed point fired inside an advisory auto-checkpoint (the
      // statement itself committed): die with checkpoint.tmp still on disk.
      progress.Ack(++acked);
      ::_exit(42);
    }
    if (!result->rejected()) progress.Ack(++acked);
  }
  ::_exit(0);  // stream exhausted; the parent still recovers and verifies
}

// ---------------------------------------------------------------------------
// Parent.

#define CRASH_CHECK(cond, ...)                     \
  do {                                             \
    if (!(cond)) {                                 \
      std::fprintf(stderr, "FAIL: " __VA_ARGS__);  \
      std::fprintf(stderr, "\n");                  \
      return false;                                \
    }                                              \
  } while (false)

std::unique_ptr<Session> MakeSchemaSession(const std::string& wal_dir) {
  SessionOptions options;
  options.durability.wal_dir = wal_dir;
  options.durability.wal_fsync = WalFsync::kCommit;
  auto session = std::make_unique<Session>(options);
  if (!session->Execute(kDdl).ok()) return nullptr;
  session->DeclareWorkload(Workload());
  return session;
}

/// Recovers the child's directory and verifies the three-part contract.
bool VerifyIteration(const std::string& dir, uint64_t seed) {
  const uint64_t acked = ProgressFile::Read(dir);

  auto revived = MakeSchemaSession(dir);
  CRASH_CHECK(revived != nullptr, "schema replay failed");
  Status recovered = revived->Recover();
  CRASH_CHECK(recovered.ok(), "Recover: %s", recovered.ToString().c_str());
  if (!revived->prepared()) {
    // Died before the first checkpoint: loads were replayed directly.
    Status prepared = revived->Prepare();
    CRASH_CHECK(prepared.ok(), "post-recovery Prepare: %s",
                prepared.ToString().c_str());
  }
  const auto recovered_state = BaseFingerprints(*revived);

  // Replay the deterministic stream on a WAL-less oracle, looking for a
  // prefix whose base tables match the recovered state.
  Session oracle;
  CRASH_CHECK(oracle.Execute(kDdl).ok(), "oracle DDL failed");
  bool matched = false;
  uint64_t committed = 0;
  auto consider = [&] {
    if (!matched && BaseFingerprints(oracle) == recovered_state) {
      matched = committed >= acked;
    }
  };
  consider();  // the empty prefix (death before the first load)
  for (const std::string& sql : LoadStatements()) {
    CRASH_CHECK(oracle.Execute(sql).ok(), "oracle load failed");
    ++committed;
    consider();
  }
  oracle.DeclareWorkload(Workload());
  CRASH_CHECK(oracle.Prepare().ok(), "oracle Prepare failed");
  Rng rng(seed);
  for (int64_t step = 1; step <= kMaxStreamSteps && !matched; ++step) {
    auto result = oracle.Execute(StreamStatement(rng, step));
    CRASH_CHECK(result.ok(), "oracle step %lld failed: %s",
                static_cast<long long>(step),
                result.status().ToString().c_str());
    if (!result->rejected()) ++committed;
    consider();
  }
  CRASH_CHECK(matched,
              "recovered state matches no stream prefix with >= %llu acked "
              "commits",
              static_cast<unsigned long long>(acked));

  // The re-derived views and assertions are sound.
  Status consistent = revived->CheckConsistency();
  CRASH_CHECK(consistent.ok(), "recompute oracle diverged: %s",
              consistent.ToString().c_str());
  auto checks = revived->CheckAssertions();
  CRASH_CHECK(checks.ok(), "CheckAssertions: %s",
              checks.status().ToString().c_str());
  for (const auto& check : *checks) {
    CRASH_CHECK(check.holds, "assertion %s violated after recovery",
                check.name.c_str());
  }
  return true;
}

bool RunIteration(const std::string& dir, uint64_t seed, bool kill_mode,
                  const char* crash_point, Rng& delay_rng) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::fprintf(stderr, "FAIL: fork: %s\n", std::strerror(errno));
    return false;
  }
  if (pid == 0) RunChild(dir, seed, kill_mode ? nullptr : crash_point);

  if (kill_mode) {
    // Land the kill anywhere from mid-load to deep into the stream.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(delay_rng.Uniform(2, 90)));
    (void)::kill(pid, SIGKILL);
  }
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) < 0) {
    std::fprintf(stderr, "FAIL: waitpid: %s\n", std::strerror(errno));
    return false;
  }
  if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 3) {
    std::fprintf(stderr, "FAIL: child setup failed (exit 3)\n");
    return false;
  }
  return VerifyIteration(dir, seed);
}

bool RunSoak(const CrashSoakOptions& options) {
  char tmpl[] = "/tmp/auxview_crash_soak_XXXXXX";
  const char* root = ::mkdtemp(tmpl);
  if (root == nullptr) {
    std::fprintf(stderr, "FAIL: mkdtemp: %s\n", std::strerror(errno));
    return false;
  }
  std::printf("crash_soak: root %s, budget %.0fs, seed %llu\n", root,
              options.seconds,
              static_cast<unsigned long long>(options.seed));

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options.seconds));
  Rng delay_rng(options.seed ^ 0xD1B54A32D192ED03ull);
  constexpr size_t kNumPoints = sizeof(kCrashPoints) / sizeof(kCrashPoints[0]);
  int64_t iteration = 0;
  int64_t kills = 0;
  int64_t failpoint_crashes = 0;
  bool ok = true;
  while (std::chrono::steady_clock::now() < deadline &&
         (options.iterations == 0 || iteration < options.iterations)) {
    const uint64_t seed = options.seed + static_cast<uint64_t>(iteration);
    const bool kill_mode = (iteration % 2) == 0;
    const char* crash_point =
        kCrashPoints[static_cast<size_t>(iteration / 2) % kNumPoints];
    const std::string dir =
        std::string(root) + "/iter" + std::to_string(iteration);
    if (!RunIteration(dir, seed, kill_mode, crash_point, delay_rng)) {
      std::fprintf(stderr,
                   "crash_soak: FAILED at iteration %lld "
                   "(mode=%s crash_point=%s seed=%llu dir=%s)\n",
                   static_cast<long long>(iteration),
                   kill_mode ? "sigkill" : "failpoint",
                   kill_mode ? "-" : crash_point,
                   static_cast<unsigned long long>(seed), dir.c_str());
      std::fprintf(stderr,
                   "crash_soak: repro: crash_soak --seed %llu --iterations "
                   "%lld\n",
                   static_cast<unsigned long long>(options.seed),
                   static_cast<long long>(iteration + 1));
      ok = false;
      break;
    }
    (kill_mode ? kills : failpoint_crashes)++;
    if (!options.keep_dirs) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
    ++iteration;
  }

  if (ok && !options.keep_dirs) {
    std::error_code ec;
    std::filesystem::remove_all(root, ec);
  }
  if (ok) {
    std::printf(
        "crash_soak: OK — %lld iterations (%lld sigkill, %lld failpoint "
        "crashes), every recovery landed on a valid prefix\n",
        static_cast<long long>(iteration), static_cast<long long>(kills),
        static_cast<long long>(failpoint_crashes));
  }
  return ok;
}

}  // namespace
}  // namespace auxview

int main(int argc, char** argv) {
  auxview::CrashSoakOptions options;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (const char* v = value("--seconds")) {
      options.seconds = std::atof(v);
    } else if (const char* v = value("--iterations")) {
      options.iterations = std::atoll(v);
    } else if (const char* v = value("--seed")) {
      options.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--keep-dirs") == 0) {
      options.keep_dirs = true;
    } else {
      std::fprintf(stderr,
                   "usage: crash_soak [--seconds N] [--iterations N] "
                   "[--seed S] [--keep-dirs]\n");
      return 2;
    }
  }
  return auxview::RunSoak(options) ? 0 : 1;
}
