// Bounded-time randomized fault-injection soak.
//
// Where tests/failpoint_test.cc proves atomicity deterministically (every
// point, every hit depth), this binary hammers the same invariants
// statistically: EVERY registered failpoint armed in probability mode at
// once, a random transaction stream, and a wall-clock budget. Each faulted
// transaction must abort with a clean kAborted naming a failpoint and leave
// every table (rows, counts, indexes) bit-identical to its pre-transaction
// fingerprint; the recompute oracle runs periodically to catch residue that
// only diverges later. Randomized arming reaches interleavings the
// fixed-depth sweep cannot — several points firing within one stream, and
// fault-after-fault sequences.
//
// Usage:
//   failpoint_soak [--seconds N] [--probability P] [--seed S] [--max-steps N]
//
// An AUXVIEW_FAILPOINTS environment spec, when set, takes precedence over
// --probability (the registry loads it at startup; the soak then leaves the
// arming alone), so CI can pin e.g. AUXVIEW_FAILPOINTS="...=p0.01" exactly.
// Exit status 0 = every invariant held for the whole budget.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "auxview.h"
#include "common/failpoint.h"
#include "common/rng.h"

namespace auxview {
namespace {

struct SoakOptions {
  double seconds = 30;
  double probability = 0.01;
  uint64_t seed = 42;
  int64_t max_steps = 0;  // 0 = wall clock only
  bool trace = false;     // print every statement (repro shrinking)
};

/// Everything a failed run must print to be reproducible: the RNG seed, the
/// step reached, and the exact armed-failpoint schedule. Filled in by
/// RunSoak; dumped by SOAK_CHECK on the first violated invariant.
struct ReproState {
  uint64_t seed = 0;
  int64_t steps = 0;
  std::string armed_spec;  // name=pP / name=N, comma-separated
};

ReproState g_repro;

void PrintRepro() {
  std::fprintf(stderr,
               "repro: failpoint_soak --seed %llu --max-steps %lld "
               "(deterministic replay of the statement stream)\n",
               static_cast<unsigned long long>(g_repro.seed),
               static_cast<long long>(g_repro.steps));
  std::fprintf(stderr, "armed schedule: AUXVIEW_FAILPOINTS=\"%s\"\n",
               g_repro.armed_spec.empty() ? "<none>"
                                          : g_repro.armed_spec.c_str());
}

constexpr char kDdl[] = R"sql(
CREATE TABLE Emp (EName STRING PRIMARY KEY, DName STRING, Salary INT,
                  INDEX (DName));
CREATE TABLE Dept (DName STRING PRIMARY KEY, MName STRING, Budget INT);
CREATE VIEW SumOfSals (DName, SalSum) AS
  SELECT DName, SUM(Salary) FROM Emp GROUPBY DName;
CREATE ASSERTION DeptConstraint CHECK
  (NOT EXISTS (SELECT Dept.DName FROM Emp, Dept
               WHERE Dept.DName = Emp.DName
               GROUPBY Dept.DName, Budget
               HAVING SUM(Salary) > Budget));
)sql";

#define SOAK_CHECK(cond, ...)                      \
  do {                                             \
    if (!(cond)) {                                 \
      std::fprintf(stderr, "FAIL: " __VA_ARGS__);  \
      std::fprintf(stderr, "\n");                  \
      PrintRepro();                                \
      return false;                                \
    }                                              \
  } while (false)

std::unique_ptr<Session> MakeLoadedSession(const std::string& wal_dir) {
  // The soak runs WAL-backed so the wal.* points (torn append, failed
  // fsync, mid-checkpoint crash via the auto-checkpoint cadence) are
  // hammered alongside the in-memory commit path.
  SessionOptions session_options;
  session_options.durability.wal_dir = wal_dir;
  session_options.durability.wal_fsync = WalFsync::kCommit;
  session_options.durability.wal_checkpoint_every = 25;
  auto session = std::make_unique<Session>(session_options);
  if (!session->Execute(kDdl).ok()) return nullptr;
  for (int d = 0; d < 4; ++d) {
    const std::string dname = "d" + std::to_string(d);
    for (int k = 0; k < 3; ++k) {
      if (!session
               ->Execute("INSERT INTO Emp VALUES ('" + dname + "e" +
                         std::to_string(k) + "', '" + dname + "', " +
                         std::to_string(1000 + 10 * k) + ");")
               .ok()) {
        return nullptr;
      }
    }
    if (!session
             ->Execute("INSERT INTO Dept VALUES ('" + dname + "', 'm" +
                       std::to_string(d) + "', 5000);")
             .ok()) {
      return nullptr;
    }
  }
  session->DeclareWorkload({SingleModifyTxn(">Emp", "Emp", {"Salary"}, 2),
                            SingleModifyTxn(">Dept", "Dept", {"Budget"}, 1)});
  if (!session->Prepare().ok()) return nullptr;
  return session;
}

/// Byte-exact physical state of every table, rows plus index buckets.
std::map<std::string, std::string> FingerprintAll(Session& session) {
  std::map<std::string, std::string> out;
  for (const std::string& name : session.db().TableNames()) {
    out[name] = session.db().FindTable(name)->Fingerprint();
  }
  return out;
}

/// One random transaction from a pool that keeps the database bounded:
/// in-place updates, an insert/delete pair on a rotating probe key, and a
/// deliberate assertion violation.
std::string RandomStatement(Rng& rng, int64_t step, bool* expect_reject) {
  *expect_reject = false;
  const std::string dept = "d" + std::to_string(rng.Uniform(0, 3));
  switch (rng.Uniform(0, 5)) {
    case 0:
      return "UPDATE Emp SET Salary = Salary + 1 WHERE DName = '" + dept +
             "';";
    case 1:
      return "UPDATE Emp SET Salary = Salary - 1 WHERE EName = '" + dept +
             "e" + std::to_string(rng.Uniform(0, 2)) + "';";
    case 2: {
      const int64_t delta = rng.Uniform(-3, 3);
      return "UPDATE Dept SET Budget = Budget " + std::string(delta < 0 ? "-" : "+") +
             " " + std::to_string(delta < 0 ? -delta : delta) +
             " WHERE DName = '" + dept + "';";
    }
    case 3:
      return "INSERT INTO Emp VALUES ('probe" + std::to_string(step % 8) +
             "', '" + dept + "', " + std::to_string(rng.Uniform(1, 50)) + ");";
    case 4:
      return "DELETE FROM Emp WHERE EName = 'probe" +
             std::to_string(rng.Uniform(0, 7)) + "';";
    default:
      // Blows the department budget; must be rejected with zero effect.
      *expect_reject = true;
      return "UPDATE Emp SET Salary = 99999 WHERE EName = '" + dept + "e0';";
  }
}

bool RunSoak(const SoakOptions& options) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  g_repro.seed = options.seed;

  char wal_tmpl[] = "/tmp/auxview_failpoint_soak_XXXXXX";
  const char* wal_root = ::mkdtemp(wal_tmpl);
  SOAK_CHECK(wal_root != nullptr, "mkdtemp failed");

  // Session setup (DDL, loads, Prepare) runs fault-free even when the
  // environment armed points at process start.
  std::unique_ptr<Session> session;
  {
    FailpointSuspension no_faults;
    session = MakeLoadedSession(wal_root);
  }
  SOAK_CHECK(session != nullptr, "session setup failed");

  // Arm every registered point in probability mode unless an environment
  // spec already did.
  const std::vector<std::string> names = reg.Names();
  bool env_armed = false;
  for (const std::string& name : names) env_armed |= reg.armed(name);
  if (env_armed) {
    const char* env = std::getenv("AUXVIEW_FAILPOINTS");
    g_repro.armed_spec = env != nullptr ? env : "<pre-armed>";
  } else {
    std::string spec;
    char prob[32];
    std::snprintf(prob, sizeof(prob), "=p%g", options.probability);
    for (const std::string& name : names) {
      if (!spec.empty()) spec += ',';
      spec += name;
      spec += prob;
    }
    Status loaded = reg.LoadSpec(spec);
    SOAK_CHECK(loaded.ok(), "LoadSpec: %s", loaded.ToString().c_str());
    g_repro.armed_spec = spec;
  }
  std::printf("failpoint_soak: %zu points armed (%s), budget %.0fs, seed %llu\n",
              names.size(), env_armed ? "AUXVIEW_FAILPOINTS" : "all at p",
              options.seconds, static_cast<unsigned long long>(options.seed));

  Rng rng(options.seed);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options.seconds));
  int64_t steps = 0;
  int64_t committed = 0;
  int64_t fault_aborts = 0;
  int64_t assertion_rejects = 0;
  while (std::chrono::steady_clock::now() < deadline &&
         (options.max_steps == 0 || steps < options.max_steps)) {
    ++steps;
    g_repro.steps = steps;
    bool expect_reject = false;
    const std::string sql = RandomStatement(rng, steps, &expect_reject);
    if (options.trace) std::printf("%s\n", sql.c_str());

    std::map<std::string, std::string> before;
    {
      FailpointSuspension no_faults;
      before = FingerprintAll(*session);
    }
    auto result = session->Execute(sql);
    if (!result.ok()) {
      // A fault fired mid-transaction: the abort must be clean and the
      // rollback bit-exact.
      ++fault_aborts;
      SOAK_CHECK(result.status().code() == StatusCode::kAborted,
                 "step %lld (%s): non-abort failure: %s",
                 static_cast<long long>(steps), sql.c_str(),
                 result.status().ToString().c_str());
      FailpointSuspension no_faults;
      const auto after = FingerprintAll(*session);
      if (after != before) {
        for (const auto& [name, fp] : after) {
          auto it = before.find(name);
          if (it == before.end() || it->second != fp) {
            std::fprintf(stderr, "  residue in table %s\n", name.c_str());
          }
        }
      }
      SOAK_CHECK(after == before,
                 "step %lld (%s): aborted transaction left residue (%s)",
                 static_cast<long long>(steps), sql.c_str(),
                 result.status().ToString().c_str());
      continue;
    }
    if (result->rejected()) {
      // Assertion rejection is a rollback too, so the same invariant holds.
      ++assertion_rejects;
      FailpointSuspension no_faults;
      SOAK_CHECK(FingerprintAll(*session) == before,
                 "step %lld (%s): rejected transaction left residue",
                 static_cast<long long>(steps), sql.c_str());
      continue;
    }
    SOAK_CHECK(!expect_reject, "step %lld (%s): violating update committed",
               static_cast<long long>(steps), sql.c_str());
    ++committed;

    if (steps % 50 == 0) {
      FailpointSuspension no_faults;
      Status consistent = session->CheckConsistency();
      SOAK_CHECK(consistent.ok(), "step %lld: recompute oracle diverged: %s",
                 static_cast<long long>(steps), consistent.ToString().c_str());
    }
  }

  int64_t triggers = 0;
  {
    FailpointSuspension no_faults;
    for (const std::string& name : names) triggers += reg.triggers(name);
    Status consistent = session->CheckConsistency();
    SOAK_CHECK(consistent.ok(), "final recompute oracle diverged: %s",
               consistent.ToString().c_str());
    auto checks = session->CheckAssertions();
    SOAK_CHECK(checks.ok(), "final CheckAssertions failed: %s",
               checks.status().ToString().c_str());
    for (const auto& check : *checks) {
      SOAK_CHECK(check.holds, "assertion %s violated after soak",
                 check.name.c_str());
    }
  }
  reg.DisarmAll();
  session.reset();  // close the WAL before removing its directory
  {
    std::error_code ec;
    std::filesystem::remove_all(wal_root, ec);
  }
  std::printf(
      "failpoint_soak: OK — %lld steps: %lld committed, %lld fault aborts, "
      "%lld assertion rejects, %lld failpoint triggers\n",
      static_cast<long long>(steps), static_cast<long long>(committed),
      static_cast<long long>(fault_aborts),
      static_cast<long long>(assertion_rejects),
      static_cast<long long>(triggers));
  if (fault_aborts == 0) {
    std::printf(
        "failpoint_soak: note: no fault ever fired — raise --probability or "
        "--seconds for coverage\n");
  }
  return true;
}

}  // namespace
}  // namespace auxview

int main(int argc, char** argv) {
  auxview::SoakOptions options;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (const char* v = value("--seconds")) {
      options.seconds = std::atof(v);
    } else if (const char* v = value("--probability")) {
      options.probability = std::atof(v);
    } else if (const char* v = value("--seed")) {
      options.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (const char* v = value("--max-steps")) {
      options.max_steps = std::atoll(v);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      options.trace = true;
    } else {
      std::fprintf(stderr,
                   "usage: failpoint_soak [--seconds N] [--probability P] "
                   "[--seed S] [--max-steps N]\n");
      return 2;
    }
  }
  return auxview::RunSoak(options) ? 0 : 1;
}
