#!/usr/bin/env python3
"""Diffs the `tables` arrays of BENCH_<name>.json reports against goldens.

Usage:
  tools/check_bench_tables.py BENCH_foo.json [BENCH_bar.json ...]
  tools/check_bench_tables.py --update BENCH_foo.json [...]

The paper's cost tables (predicted and counted page I/Os, memo sizes,
candidate counts) are deterministic: the same binary on the same seed data
must reproduce them bit-for-bit. This gate catches silent regressions —
a cost-model tweak, a charging change, an optimizer fix — that move the
numbers without failing any unit test.

Wall-clock columns (``*_ms``/``*_us``/``*_ns``/``*_seconds`` and columns
derived from them, listed in EXTRA_EXCLUDED) vary run to run and are
replaced with null in the goldens and ignored in comparisons. Remaining
values compare within a tiny relative tolerance to absorb printf-level
float formatting differences.

Goldens live in bench/goldens/BENCH_<name>.tables.json. Regenerate with
--update after an intentional change and commit the diff. Stdlib only.
"""

import json
import math
import os
import re
import sys

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "bench", "goldens")

# Column names that are wall-clock readings regardless of bench.
TIMING_COLUMN = re.compile(r"(_ms|_us|_ns|_seconds)$")

# Per-bench columns that are deterministic-looking but derive from timings
# or from thread scheduling (cache hit rates race when threads > 1).
EXTRA_EXCLUDED = {
    "s2_scaling": {"ratio"},  # exh_ms / greedy_ms
    "f3_adepts": {"repeat_x", "hit_pct"},  # optimizer scaling table
    "h1_heuristics": {"repeat_x", "hit_pct"},  # optimizer scaling table
    "s3_crossover": {"repeat_x", "hit_pct"},  # optimizer scaling table
}

REL_TOLERANCE = 1e-9


def excluded_columns(bench, columns):
    extra = EXTRA_EXCLUDED.get(bench, set())
    return {i for i, c in enumerate(columns)
            if TIMING_COLUMN.search(c) or c in extra}


def masked_tables(doc):
    """The report's tables with wall-clock values nulled out."""
    bench = doc["bench"]
    out = []
    for table in doc["tables"]:
        skip = excluded_columns(bench, table["columns"])
        out.append({
            "title": table["title"],
            "columns": list(table["columns"]),
            "rows": [{
                "label": row["label"],
                "values": [None if i in skip else v
                           for i, v in enumerate(row["values"])],
            } for row in table["rows"]],
        })
    return out


def golden_path(bench):
    return os.path.join(GOLDEN_DIR, f"BENCH_{bench}.tables.json")


def values_match(golden, fresh):
    if golden is None and fresh is None:
        return True
    if isinstance(golden, (int, float)) and isinstance(fresh, (int, float)):
        if math.isnan(golden) and math.isnan(fresh):
            return True
        return math.isclose(golden, fresh, rel_tol=REL_TOLERANCE,
                            abs_tol=REL_TOLERANCE)
    return golden == fresh


def diff_tables(bench, golden, fresh):
    errors = []
    if len(golden) != len(fresh):
        return [f"{bench}: {len(fresh)} tables, golden has {len(golden)}"]
    for g, f in zip(golden, fresh):
        where = f"{bench}: table '{f['title']}'"
        if g["title"] != f["title"]:
            errors.append(f"{bench}: table '{f['title']}' vs golden "
                          f"'{g['title']}' (order or title changed)")
            continue
        if g["columns"] != f["columns"]:
            errors.append(f"{where}: columns {f['columns']} vs golden "
                          f"{g['columns']}")
            continue
        if len(g["rows"]) != len(f["rows"]):
            errors.append(f"{where}: {len(f['rows'])} rows, golden has "
                          f"{len(g['rows'])}")
            continue
        for grow, frow in zip(g["rows"], f["rows"]):
            if grow["label"] != frow["label"]:
                errors.append(f"{where}: row '{frow['label']}' vs golden "
                              f"'{grow['label']}'")
                continue
            for i, (gv, fv) in enumerate(zip(grow["values"],
                                             frow["values"])):
                if not values_match(gv, fv):
                    errors.append(
                        f"{where}: row '{frow['label']}' "
                        f"column '{frow and f['columns'][i]}': "
                        f"{fv} vs golden {gv}")
    return errors


def load_report(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    for key in ("bench", "tables"):
        if key not in doc:
            raise ValueError(f"{path}: missing key '{key}'")
    return doc


def main(argv):
    args = [a for a in argv[1:] if a != "--update"]
    update = len(args) != len(argv) - 1
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    all_errors = []
    for path in args:
        try:
            doc = load_report(path)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            all_errors.append(f"{path}: unreadable report: {e}")
            continue
        bench = doc["bench"]
        fresh = masked_tables(doc)
        gpath = golden_path(bench)
        if update:
            os.makedirs(GOLDEN_DIR, exist_ok=True)
            with open(gpath, "w", encoding="utf-8") as f:
                json.dump({"bench": bench, "tables": fresh}, f, indent=1)
                f.write("\n")
            print(f"updated {gpath}")
            continue
        if not os.path.exists(gpath):
            all_errors.append(
                f"{path}: no golden {gpath}; run with --update and commit")
            continue
        with open(gpath, encoding="utf-8") as f:
            golden = json.load(f)["tables"]
        all_errors.extend(diff_tables(bench, golden, fresh))

    for err in all_errors:
        print(err, file=sys.stderr)
    if not all_errors and not update:
        print(f"ok: {len(args)} report(s) match goldens")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
