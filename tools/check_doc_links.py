#!/usr/bin/env python3
"""Validates cross-references in the repo's markdown documentation.

Usage: tools/check_doc_links.py [repo_root]

Scans README.md, DESIGN.md, ROADMAP.md and docs/*.md for:

  1. Relative markdown links `[text](path)` — the target file must exist
     (anchors `#...` are stripped; absolute URLs are skipped).
  2. Inline-code path references like `src/concurrency/snapshot.h`,
     `tools/check_bench_json.py`, `docs/CONCURRENCY.md` or `tests/foo.cc`
     — the file or directory must exist, so renames can't silently strand
     the docs.

Exits non-zero with one message per broken reference, so CI can gate on
it. Stdlib only — no third-party dependencies.
"""

import os
import re
import sys

DOC_FILES = ["README.md", "DESIGN.md", "ROADMAP.md"]
DOC_GLOB_DIR = "docs"

# [text](target) — excludes images' inner brackets well enough for our docs.
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

# `src/foo/bar.h`, `tools/x.py`, `docs/Y.md`, `tests/z.cc`, `benchmarks/...`
# inside inline code spans. Trailing punctuation like `:123` (line anchors)
# is allowed and stripped.
CODE_PATH = re.compile(
    r"`((?:src|tools|docs|tests|benchmarks)/[A-Za-z0-9_./\-]+)`")

SKIP_SCHEMES = ("http://", "https://", "mailto:")


def doc_files(root):
    files = [p for p in DOC_FILES if os.path.isfile(os.path.join(root, p))]
    docs_dir = os.path.join(root, DOC_GLOB_DIR)
    if os.path.isdir(docs_dir):
        files.extend(
            os.path.join(DOC_GLOB_DIR, name)
            for name in sorted(os.listdir(docs_dir))
            if name.endswith(".md"))
    return files


def strip_code_blocks(text):
    """Removes fenced code blocks: shell transcripts legitimately mention
    paths that don't exist (scratch dirs, generated files)."""
    out, in_fence = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        out.append("" if in_fence else line)
    return "\n".join(out)


def check_file(root, rel):
    errors = []
    path = os.path.join(root, rel)
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    text = strip_code_blocks(raw)
    base = os.path.dirname(path)

    for n, line in enumerate(text.splitlines(), start=1):
        for m in MD_LINK.finditer(line):
            target = m.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            target = target.split("#", 1)[0]
            resolved = os.path.normpath(os.path.join(base, target))
            if not os.path.exists(resolved):
                errors.append(f"{rel}:{n}: broken link '{m.group(1)}'")
        for m in CODE_PATH.finditer(line):
            target = re.sub(r":\d+.*$", "", m.group(1)).rstrip(".")
            # Repo-root-relative regardless of which doc mentions it. A
            # reference to a built binary (`tools/crash_soak`) resolves via
            # its source file.
            resolved = os.path.join(root, target)
            if not (os.path.exists(resolved)
                    or os.path.exists(resolved + ".cc")):
                errors.append(f"{rel}:{n}: dangling path reference "
                              f"'{m.group(1)}'")
    return errors


def main(argv):
    root = argv[1] if len(argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    files = doc_files(root)
    if not files:
        print(f"no documentation files found under {root}", file=sys.stderr)
        return 2
    all_errors = []
    for rel in files:
        all_errors.extend(check_file(root, rel))
    for err in all_errors:
        print(err, file=sys.stderr)
    if not all_errors:
        print(f"ok: {len(files)} doc file(s), all references resolve")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
