#!/usr/bin/env python3
"""Validates BENCH_<name>.json files emitted by the bench binaries.

Usage: tools/check_bench_json.py BENCH_foo.json [BENCH_bar.json ...]

Checks the schema documented in docs/BENCHMARKING.md: required top-level
keys, their types, the table structure (row value counts match the column
count), and that the metrics snapshot carries the page-I/O counters every
report must include. Exits non-zero with a message per violation, so CI can
gate on it. Stdlib only — no third-party dependencies.
"""

import json
import sys

REQUIRED_TOP_LEVEL = {
    "schema_version": int,
    "bench": str,
    "wall_time_seconds": (int, float),
    "table_time_seconds": (int, float),
    "page_reads": int,
    "page_writes": int,
    "tables": list,
    "metrics": dict,
}

REQUIRED_COUNTERS = ["storage.page_reads", "storage.page_writes"]

# The durable-log metric family (docs/DURABILITY.md). WAL counters are
# optional — benches without a log attached legitimately omit them — but any
# counter in the wal.* namespace must be one of these, so a typo'd or
# renamed counter fails the gate instead of silently forking the family.
KNOWN_WAL_COUNTERS = {
    "wal.appends",
    "wal.aborts",
    "wal.bytes",
    "wal.fsyncs",
    "wal.checkpoints",
    "wal.checkpoint_failures",
    "wal.recovered_txns",
    "wal.truncated_tail",
}

# The concurrency-layer metric family (docs/CONCURRENCY.md,
# docs/OBSERVABILITY.md). Same closed-namespace rule as wal.*:
# concurrency.snapshot_pins is a gauge, the rest are counters.
KNOWN_CONCURRENCY_COUNTERS = {
    "concurrency.commits",
    "concurrency.conflicts",
    "concurrency.retries",
}
KNOWN_CONCURRENCY_GAUGES = {
    "concurrency.snapshot_pins",
}

# The parallel-propagation worker-pool family (docs/OBSERVABILITY.md,
# docs/CONCURRENCY.md "Intra-transaction parallelism"). Closed namespace
# like wal.* — maintain.pool.worker_us is a histogram, the rest counters.
KNOWN_POOL_COUNTERS = {
    "maintain.pool.tasks_spawned",
    "maintain.pool.waves",
    "maintain.pool.partitions",
    "maintain.pool.coalesce_rows",
}
KNOWN_POOL_HISTOGRAMS = {
    "maintain.pool.worker_us",
}

# The shard-routing family (docs/SHARDING.md, docs/OBSERVABILITY.md).
# Closed namespace like wal.*: the class_* counters record the locality
# classifier's verdict per transaction, sharded/fallback record which
# execution path the transaction took. All counters, no gauges/histograms.
KNOWN_SHARD_COUNTERS = {
    "maintain.shard.class_self_maintainable",
    "maintain.shard.class_key_local",
    "maintain.shard.class_cross_shard",
    "maintain.shard.sharded_txns",
    "maintain.shard.fallback_txns",
}


def check(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    for key, expected in REQUIRED_TOP_LEVEL.items():
        if key not in doc:
            errors.append(f"{path}: missing key '{key}'")
        elif not isinstance(doc[key], expected):
            errors.append(
                f"{path}: '{key}' has type {type(doc[key]).__name__}, "
                f"expected {expected}")
    if errors:
        return errors

    if doc["schema_version"] != 1:
        errors.append(f"{path}: unknown schema_version {doc['schema_version']}")

    for t, table in enumerate(doc["tables"]):
        where = f"{path}: tables[{t}]"
        for key, expected in (("title", str), ("columns", list),
                              ("rows", list)):
            if not isinstance(table.get(key), expected):
                errors.append(f"{where}: bad or missing '{key}'")
                break
        else:
            ncols = len(table["columns"])
            for r, row in enumerate(table["rows"]):
                if not isinstance(row.get("label"), str):
                    errors.append(f"{where}.rows[{r}]: bad 'label'")
                values = row.get("values")
                if not isinstance(values, list):
                    errors.append(f"{where}.rows[{r}]: bad 'values'")
                elif ncols and len(values) != ncols:
                    errors.append(
                        f"{where}.rows[{r}]: {len(values)} values for "
                        f"{ncols} columns")

    counters = doc["metrics"].get("counters")
    if not isinstance(counters, dict):
        errors.append(f"{path}: metrics.counters missing")
    else:
        for name in REQUIRED_COUNTERS:
            if name not in counters:
                errors.append(f"{path}: metrics.counters missing '{name}'")
        for name in counters:
            if name.startswith("wal.") and name not in KNOWN_WAL_COUNTERS:
                errors.append(
                    f"{path}: unknown wal.* counter '{name}' (update "
                    f"KNOWN_WAL_COUNTERS and docs/DURABILITY.md together)")
            if (name.startswith("concurrency.")
                    and name not in KNOWN_CONCURRENCY_COUNTERS):
                errors.append(
                    f"{path}: unknown concurrency.* counter '{name}' "
                    f"(update KNOWN_CONCURRENCY_COUNTERS and "
                    f"docs/CONCURRENCY.md together)")
            if (name.startswith("maintain.pool.")
                    and name not in KNOWN_POOL_COUNTERS):
                errors.append(
                    f"{path}: unknown maintain.pool.* counter '{name}' "
                    f"(update KNOWN_POOL_COUNTERS and "
                    f"docs/OBSERVABILITY.md together)")
            if (name.startswith("maintain.shard.")
                    and name not in KNOWN_SHARD_COUNTERS):
                errors.append(
                    f"{path}: unknown maintain.shard.* counter '{name}' "
                    f"(update KNOWN_SHARD_COUNTERS and "
                    f"docs/SHARDING.md together)")

    for key in ("gauges", "histograms"):
        if not isinstance(doc["metrics"].get(key), dict):
            errors.append(f"{path}: metrics.{key} missing")

    gauges = doc["metrics"].get("gauges")
    if isinstance(gauges, dict):
        for name in gauges:
            if (name.startswith("concurrency.")
                    and name not in KNOWN_CONCURRENCY_GAUGES):
                errors.append(
                    f"{path}: unknown concurrency.* gauge '{name}' "
                    f"(update KNOWN_CONCURRENCY_GAUGES and "
                    f"docs/CONCURRENCY.md together)")
            if name.startswith("maintain.pool."):
                errors.append(
                    f"{path}: unexpected maintain.pool.* gauge '{name}' "
                    f"(the pool family has no gauges)")
            if name.startswith("maintain.shard."):
                errors.append(
                    f"{path}: unexpected maintain.shard.* gauge '{name}' "
                    f"(the shard family has no gauges)")

    histograms = doc["metrics"].get("histograms")
    if isinstance(histograms, dict):
        for name in histograms:
            if (name.startswith("maintain.pool.")
                    and name not in KNOWN_POOL_HISTOGRAMS):
                errors.append(
                    f"{path}: unknown maintain.pool.* histogram '{name}' "
                    f"(update KNOWN_POOL_HISTOGRAMS and "
                    f"docs/OBSERVABILITY.md together)")
            if name.startswith("maintain.shard."):
                errors.append(
                    f"{path}: unexpected maintain.shard.* histogram "
                    f"'{name}' (the shard family has no histograms)")

    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_errors = []
    for path in argv[1:]:
        all_errors.extend(check(path))
    for err in all_errors:
        print(err, file=sys.stderr)
    if not all_errors:
        print(f"ok: {len(argv) - 1} report(s) valid")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
