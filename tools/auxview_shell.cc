// An interactive shell over the Session facade — the quickest way to poke
// at the system:
//
//   $ ./build/tools/auxview_shell
//   auxview> CREATE TABLE Emp (EName STRING PRIMARY KEY, DName STRING,
//            Salary INT, INDEX (DName));
//   auxview> CREATE VIEW SumOfSals (DName, SalSum) AS
//            SELECT DName, SUM(Salary) FROM Emp GROUPBY DName;
//   auxview> INSERT INTO Emp VALUES ('alice', 'eng', 100);
//   auxview> .workload modify Emp Salary 5
//   auxview> .prepare
//   auxview> .plan
//   auxview> UPDATE Emp SET Salary = 120 WHERE EName = 'alice';
//   auxview> SELECT * FROM SumOfSals;
//
// Dot-commands: .prepare [strategy], .workload <modify|insert|delete>
// <relation> [attr] [weight], .plan, .check, .io, .consistency, .help,
// .quit. Statements may span lines; they run at ';'.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "auxview.h"
#include "optimizer/explain.h"

namespace {

using namespace auxview;

void PrintHelp() {
  std::printf(
      "SQL: CREATE TABLE/VIEW/ASSERTION, SELECT, INSERT, UPDATE, DELETE\n"
      "dot-commands:\n"
      "  .workload <modify|insert|delete> <relation> [attr] [weight]\n"
      "      declare an expected transaction type (repeatable)\n"
      "  .prepare [exhaustive|shielding|single-tree|marking|greedy]\n"
      "      optimize view selection and materialize\n"
      "  .plan          show the chosen views and per-transaction tracks\n"
      "  .check         check all assertions\n"
      "  .consistency   verify maintained views against recomputation\n"
      "  .io            show the page-I/O counter\n"
      "  .reset-io      reset the page-I/O counter\n"
      "  .metrics       dump the live metrics snapshot (\\metrics works too)\n"
      "  .fail          list failpoints (armed state, hits, triggers)\n"
      "  .fail <name> <N|pP>   arm: abort at the Nth hit / with probability P\n"
      "  .fail off [name]      disarm one failpoint, or all\n"
      "  .help .quit\n"
      "(docs/SHELL.md documents every command in detail)\n");
}

std::vector<std::string> Split(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> out;
  std::string word;
  while (in >> word) out.push_back(word);
  return out;
}

class Shell {
 public:
  int Run() {
    std::printf("auxview shell — SIGMOD'96 \"Trading Space for Time\"; "
                ".help for help\n");
    std::string buffer;
    std::string line;
    while (true) {
      std::printf(buffer.empty() ? "auxview> " : "    ...> ");
      std::fflush(stdout);
      if (!std::getline(std::cin, line)) break;
      if (buffer.empty() && !line.empty() &&
          (line[0] == '.' || line[0] == '\\')) {
        if (!DotCommand(line)) break;
        continue;
      }
      buffer += line + "\n";
      if (line.find(';') == std::string::npos) continue;
      RunSql(buffer);
      buffer.clear();
    }
    return 0;
  }

 private:
  void RunSql(const std::string& sql) {
    auto result = session_.Execute(sql);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return;
    }
    if (result->rejected()) {
      std::printf("REJECTED: assertion %s would be violated (rolled back)\n",
                  result->violated_assertion.c_str());
      return;
    }
    switch (result->kind) {
      case ExecResult::Kind::kDdl:
        std::printf("ok\n");
        break;
      case ExecResult::Kind::kDml:
        std::printf("ok, %lld row(s)\n",
                    static_cast<long long>(result->affected));
        break;
      case ExecResult::Kind::kRows: {
        std::printf("[%s]\n", result->rows->schema().ToString().c_str());
        for (const auto& [row, count] : result->rows->SortedRows()) {
          for (int64_t i = 0; i < count; ++i) {
            std::printf("%s\n", RowToString(row).c_str());
          }
        }
        std::printf("(%lld row(s))\n",
                    static_cast<long long>(result->rows->total_count()));
        break;
      }
    }
  }

  bool DotCommand(const std::string& line) {
    std::vector<std::string> words = Split(line);
    // psql-style backslash spelling maps onto the same commands
    // (\metrics == .metrics).
    if (!words[0].empty() && words[0][0] == '\\') words[0][0] = '.';
    const std::string& cmd = words[0];
    if (cmd == ".quit" || cmd == ".exit") return false;
    if (cmd == ".help") {
      PrintHelp();
    } else if (cmd == ".workload") {
      if (words.size() < 3) {
        std::printf("usage: .workload <modify|insert|delete> <relation> "
                    "[attr] [weight]\n");
        return true;
      }
      TransactionType txn;
      UpdateSpec spec;
      spec.relation = words[2];
      size_t next = 3;
      if (words[1] == "modify") {
        spec.kind = UpdateKind::kModify;
        if (words.size() > next) spec.modified_attrs = {words[next++]};
      } else if (words[1] == "insert") {
        spec.kind = UpdateKind::kInsert;
      } else if (words[1] == "delete") {
        spec.kind = UpdateKind::kDelete;
      } else {
        std::printf("unknown update kind: %s\n", words[1].c_str());
        return true;
      }
      txn.weight = words.size() > next ? std::atof(words[next].c_str()) : 1;
      txn.name = ">" + spec.relation + "/" + words[1];
      txn.updates.push_back(spec);
      workload_.push_back(txn);
      session_.DeclareWorkload(workload_);
      std::printf("declared %s\n", txn.ToString().c_str());
    } else if (cmd == ".prepare") {
      SessionOptions options;
      if (words.size() > 1) {
        const std::string& s = words[1];
        if (s == "shielding") options.strategy = Strategy::kShielding;
        else if (s == "single-tree") options.strategy = Strategy::kSingleTree;
        else if (s == "marking") {
          options.strategy = Strategy::kHeuristicMarking;
        } else if (s == "greedy") {
          options.strategy = Strategy::kGreedy;
        }
      }
      // Sessions are single-prepare; strategy changes need a fresh shell.
      if (session_.prepared()) {
        std::printf("already prepared\n");
        return true;
      }
      Status st = session_.Prepare();
      if (!st.ok()) {
        std::printf("prepare failed: %s\n", st.ToString().c_str());
        return true;
      }
      std::printf("%s", ExplainPlan(session_.memo(), session_.plan()).c_str());
    } else if (cmd == ".plan") {
      if (!session_.prepared()) {
        std::printf("not prepared yet\n");
        return true;
      }
      std::printf("%s", ExplainPlan(session_.memo(), session_.plan()).c_str());
    } else if (cmd == ".check") {
      auto checks = session_.CheckAssertions();
      if (!checks.ok()) {
        std::printf("error: %s\n", checks.status().ToString().c_str());
        return true;
      }
      for (const AssertionCheck& check : *checks) {
        std::printf("%s\n", check.ToString().c_str());
      }
      if (checks->empty()) std::printf("(no assertions declared)\n");
    } else if (cmd == ".consistency") {
      Status st = session_.CheckConsistency();
      std::printf("%s\n", st.ok() ? "consistent" : st.ToString().c_str());
    } else if (cmd == ".io") {
      std::printf("%s\n", session_.counter().ToString().c_str());
    } else if (cmd == ".metrics") {
      const obs::MetricsSnapshot snapshot =
          obs::MetricsRegistry::Global().Snapshot();
      std::printf("%s", snapshot.ToTable().c_str());
    } else if (cmd == ".fail") {
      FailpointRegistry& reg = FailpointRegistry::Global();
      if (words.size() == 1) {
        for (const std::string& name : reg.Names()) {
          std::printf("%-30s %-8s hits=%lld triggers=%lld\n", name.c_str(),
                      reg.armed(name) ? "ARMED" : "off",
                      static_cast<long long>(reg.hits(name)),
                      static_cast<long long>(reg.triggers(name)));
        }
      } else if (words[1] == "off") {
        if (words.size() > 2) {
          reg.Disarm(words[2]);
        } else {
          reg.DisarmAll();
        }
        std::printf("ok\n");
      } else if (words.size() == 3) {
        // Reuse the AUXVIEW_FAILPOINTS spec grammar: name=N or name=pP.
        Status st = reg.LoadSpec(words[1] + "=" + words[2]);
        std::printf("%s\n", st.ok() ? "armed" : st.ToString().c_str());
      } else {
        std::printf("usage: .fail | .fail <name> <N|pP> | .fail off [name]\n");
      }
    } else if (cmd == ".reset-io") {
      session_.db().counter().Reset();
      std::printf("ok\n");
    } else {
      std::printf("unknown command %s (.help for help)\n", cmd.c_str());
    }
    return true;
  }

  Session session_;
  std::vector<TransactionType> workload_;
};

}  // namespace

int main() { return Shell().Run(); }
