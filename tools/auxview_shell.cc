// An interactive shell over the Session facade — the quickest way to poke
// at the system:
//
//   $ ./build/tools/auxview_shell
//   auxview> CREATE TABLE Emp (EName STRING PRIMARY KEY, DName STRING,
//            Salary INT, INDEX (DName));
//   auxview> CREATE VIEW SumOfSals (DName, SalSum) AS
//            SELECT DName, SUM(Salary) FROM Emp GROUPBY DName;
//   auxview> INSERT INTO Emp VALUES ('alice', 'eng', 100);
//   auxview> .workload modify Emp Salary 5
//   auxview> .prepare
//   auxview> .plan
//   auxview> UPDATE Emp SET Salary = 120 WHERE EName = 'alice';
//   auxview> SELECT * FROM SumOfSals;
//
// Dot-commands: .prepare [strategy], .workload <modify|insert|delete>
// <relation> [attr] [weight], .plan, .check, .io, .consistency, .shards,
// .shardkey, .wal, .checkpoint, .recover, .session, .commit, .abort,
// .retry, .help, .quit.
// Statements may span lines; they run at ';'.
//
// After .prepare, `.session open` starts a concurrent session: statements
// stage privately against a pinned snapshot until .commit, which runs
// first-committer-wins validation (docs/SHELL.md has a two-session
// conflict demo).
//
// Interactive sessions get an in-process line-history buffer (Up/Down
// recall, backspace editing) with no readline dependency; piped input
// falls back to plain std::getline so scripts behave byte-identically.

#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <termios.h>
#include <unistd.h>

#include "auxview.h"
#include "optimizer/explain.h"

namespace {

using namespace auxview;

/// Minimal interactive line reader: raw-mode keystroke loop with an
/// in-process history ring (Up/Down recall the previous/next line,
/// backspace edits, Ctrl-U clears, Ctrl-C abandons the line, Ctrl-D on an
/// empty line is EOF). Only the current line is editable and only at its
/// end — deliberately tiny, not a readline. When stdin is not a terminal
/// (scripts, CI, `shell < file.sql`), every call degrades to std::getline
/// so piped sessions are byte-identical with or without a TTY.
class LineReader {
 public:
  /// Reads one line (without the trailing newline) after printing `prompt`.
  /// Returns false on EOF.
  bool ReadLine(const std::string& prompt, std::string* out) {
    if (!isatty(STDIN_FILENO)) {
      std::printf("%s", prompt.c_str());
      std::fflush(stdout);
      return static_cast<bool>(std::getline(std::cin, *out));
    }
    RawMode raw;
    if (!raw.ok()) {  // exotic terminal: keep working, lose history
      std::printf("%s", prompt.c_str());
      std::fflush(stdout);
      return static_cast<bool>(std::getline(std::cin, *out));
    }
    std::string line;
    // One-past-the-end of history_ = "the fresh line being typed"; Up moves
    // toward 0. The line under edit is stashed so Down returns to it.
    size_t cursor = history_.size();
    std::string stash;
    Redraw(prompt, line);
    while (true) {
      unsigned char c;
      const ssize_t n = read(STDIN_FILENO, &c, 1);
      if (n <= 0) {  // EOF/error mid-line: hand back what we have
        std::printf("\n");
        *out = line;
        return !line.empty();
      }
      if (c == '\r' || c == '\n') {
        std::printf("\n");
        if (!line.empty() &&
            (history_.empty() || history_.back() != line)) {
          history_.push_back(line);
          if (history_.size() > kMaxHistory) {
            history_.erase(history_.begin());
          }
        }
        *out = line;
        return true;
      }
      if (c == 0x04) {  // Ctrl-D: EOF on an empty line, else ignored
        if (line.empty()) {
          std::printf("\n");
          return false;
        }
        continue;
      }
      if (c == 0x03) {  // Ctrl-C: abandon the line
        std::printf("^C\n");
        line.clear();
        cursor = history_.size();
        Redraw(prompt, line);
        continue;
      }
      if (c == 0x15) {  // Ctrl-U: clear the line
        line.clear();
        Redraw(prompt, line);
        continue;
      }
      if (c == 0x7f || c == 0x08) {  // backspace
        if (!line.empty()) line.pop_back();
        Redraw(prompt, line);
        continue;
      }
      if (c == 0x1b) {  // ESC [ A/B — arrow keys; other sequences ignored
        unsigned char seq[2];
        if (read(STDIN_FILENO, &seq[0], 1) != 1 ||
            read(STDIN_FILENO, &seq[1], 1) != 1 || seq[0] != '[') {
          continue;
        }
        if (seq[1] == 'A' && cursor > 0) {  // Up: older
          if (cursor == history_.size()) stash = line;
          line = history_[--cursor];
          Redraw(prompt, line);
        } else if (seq[1] == 'B' && cursor < history_.size()) {  // Down
          ++cursor;
          line = cursor == history_.size() ? stash : history_[cursor];
          Redraw(prompt, line);
        }
        continue;
      }
      if (c >= 0x20) {  // printable (UTF-8 continuation bytes included)
        line.push_back(static_cast<char>(c));
        std::fputc(c, stdout);
        std::fflush(stdout);
      }
    }
  }

 private:
  static constexpr size_t kMaxHistory = 500;

  /// Enters raw input (no echo, no line buffering, no signal keys) for one
  /// line's scope and restores the saved settings on destruction. Ctrl-C is
  /// read as a byte and means "abandon the line", like readline's default.
  class RawMode {
   public:
    RawMode() {
      ok_ = tcgetattr(STDIN_FILENO, &saved_) == 0;
      if (!ok_) return;
      termios raw = saved_;
      raw.c_lflag &= ~static_cast<tcflag_t>(ECHO | ICANON | ISIG);
      raw.c_iflag &= ~static_cast<tcflag_t>(IXON | ICRNL);
      raw.c_cc[VMIN] = 1;
      raw.c_cc[VTIME] = 0;
      ok_ = tcsetattr(STDIN_FILENO, TCSAFLUSH, &raw) == 0;
    }
    ~RawMode() {
      if (ok_) tcsetattr(STDIN_FILENO, TCSAFLUSH, &saved_);
    }
    bool ok() const { return ok_; }

   private:
    termios saved_;
    bool ok_ = false;
  };

  static void Redraw(const std::string& prompt, const std::string& line) {
    // \r + clear-to-end repaint; fine for lines shorter than the terminal
    // width, which is all this shell needs.
    std::printf("\r\x1b[K%s%s", prompt.c_str(), line.c_str());
    std::fflush(stdout);
  }

  std::vector<std::string> history_;
};

void PrintHelp() {
  std::printf(
      "SQL: CREATE TABLE/VIEW/ASSERTION, SELECT, INSERT, UPDATE, DELETE\n"
      "dot-commands:\n"
      "  .workload <modify|insert|delete> <relation> [attr] [weight]\n"
      "      declare an expected transaction type (repeatable)\n"
      "  .prepare [exhaustive|shielding|single-tree|marking|greedy]\n"
      "      optimize view selection and materialize\n"
      "  .plan          show the chosen views and per-transaction tracks\n"
      "  .check         check all assertions\n"
      "  .consistency   verify maintained views against recomputation\n"
      "  .io            show the page-I/O counter\n"
      "  .reset-io      reset the page-I/O counter\n"
      "  .threads [N]   show or set delta-propagation workers (results and\n"
      "      charged costs are identical for every N; wall clock differs)\n"
      "  .shards [N]    show the shard count and per-shard I/O counters, or\n"
      "      set the count (before any CREATE TABLE; identical results and\n"
      "      charged costs for every N — docs/SHARDING.md)\n"
      "  .shardkey <table> <attr> [attr...]\n"
      "      declare a table's shard key (before its CREATE TABLE)\n"
      "  .metrics       dump the live metrics snapshot (\\metrics works too)\n"
      "  .fail          list failpoints (armed state, hits, triggers)\n"
      "  .fail <name> <N|pP>   arm: abort at the Nth hit / with probability P\n"
      "  .fail off [name]      disarm one failpoint, or all\n"
      "  .wal <dir> [commit|checkpoint|never] [every-N]\n"
      "      attach a write-ahead log (before .prepare); fsync policy and\n"
      "      auto-checkpoint cadence are optional\n"
      "  .checkpoint    write a checkpoint and truncate the log prefix\n"
      "  .recover       replay the attached log's durable state (run the\n"
      "      same DDL and .workload lines first, instead of reloading data)\n"
      "  .session open [name]   open a concurrent session (after .prepare)\n"
      "      and switch to it; statements now stage privately until .commit\n"
      "  .session switch <name|main>   route statements to another session\n"
      "  .session close [name]  close a session (dropping staged changes)\n"
      "  .session       list open sessions (snapshot epoch, staged state)\n"
      "  .commit        optimistic commit of the current session's staging\n"
      "  .abort         drop the current session's staged changes\n"
      "  .retry         drop staged changes, repin, count a retry\n"
      "  .help .quit\n"
      "(docs/SHELL.md documents every command in detail)\n");
}

std::vector<std::string> Split(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> out;
  std::string word;
  while (in >> word) out.push_back(word);
  return out;
}

class Shell {
 public:
  int Run() {
    std::printf("auxview shell — SIGMOD'96 \"Trading Space for Time\"; "
                ".help for help\n");
    std::string buffer;
    std::string line;
    while (true) {
      const std::string prompt =
          active_.empty() ? "auxview> " : active_ + "> ";
      if (!reader_.ReadLine(buffer.empty() ? prompt : "    ...> ", &line)) {
        break;
      }
      if (buffer.empty() && !line.empty() &&
          (line[0] == '.' || line[0] == '\\')) {
        if (!DotCommand(line)) break;
        continue;
      }
      buffer += line + "\n";
      if (line.find(';') == std::string::npos) continue;
      RunSql(buffer);
      buffer.clear();
    }
    return 0;
  }

 private:
  TxnSession* ActiveTxn() {
    auto it = txn_sessions_.find(active_);
    return it == txn_sessions_.end() ? nullptr : it->second.get();
  }

  void RunSql(const std::string& sql) {
    TxnSession* txn = ActiveTxn();
    auto result = txn != nullptr ? txn->Execute(sql) : session_.Execute(sql);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return;
    }
    if (result->rejected()) {
      std::printf("REJECTED: assertion %s would be violated (rolled back)\n",
                  result->violated_assertion.c_str());
      return;
    }
    switch (result->kind) {
      case ExecResult::Kind::kDdl:
        std::printf("ok\n");
        break;
      case ExecResult::Kind::kDml:
        if (txn != nullptr) {
          std::printf("staged, %lld row(s) (uncommitted; .commit to "
                      "publish)\n",
                      static_cast<long long>(result->affected));
        } else {
          std::printf("ok, %lld row(s)\n",
                      static_cast<long long>(result->affected));
        }
        break;
      case ExecResult::Kind::kRows: {
        std::printf("[%s]\n", result->rows->schema().ToString().c_str());
        for (const auto& [row, count] : result->rows->SortedRows()) {
          for (int64_t i = 0; i < count; ++i) {
            std::printf("%s\n", RowToString(row).c_str());
          }
        }
        std::printf("(%lld row(s))\n",
                    static_cast<long long>(result->rows->total_count()));
        break;
      }
    }
  }

  bool DotCommand(const std::string& line) {
    std::vector<std::string> words = Split(line);
    // psql-style backslash spelling maps onto the same commands
    // (\metrics == .metrics).
    if (!words[0].empty() && words[0][0] == '\\') words[0][0] = '.';
    const std::string& cmd = words[0];
    if (cmd == ".quit" || cmd == ".exit") return false;
    if (cmd == ".help") {
      PrintHelp();
    } else if (cmd == ".workload") {
      if (words.size() < 3) {
        std::printf("usage: .workload <modify|insert|delete> <relation> "
                    "[attr] [weight]\n");
        return true;
      }
      TransactionType txn;
      UpdateSpec spec;
      spec.relation = words[2];
      size_t next = 3;
      if (words[1] == "modify") {
        spec.kind = UpdateKind::kModify;
        if (words.size() > next) spec.modified_attrs = {words[next++]};
      } else if (words[1] == "insert") {
        spec.kind = UpdateKind::kInsert;
      } else if (words[1] == "delete") {
        spec.kind = UpdateKind::kDelete;
      } else {
        std::printf("unknown update kind: %s\n", words[1].c_str());
        return true;
      }
      txn.weight = words.size() > next ? std::atof(words[next].c_str()) : 1;
      txn.name = ">" + spec.relation + "/" + words[1];
      txn.updates.push_back(spec);
      workload_.push_back(txn);
      session_.DeclareWorkload(workload_);
      std::printf("declared %s\n", txn.ToString().c_str());
    } else if (cmd == ".prepare") {
      SessionOptions options;
      if (words.size() > 1) {
        const std::string& s = words[1];
        if (s == "shielding") options.strategy = Strategy::kShielding;
        else if (s == "single-tree") options.strategy = Strategy::kSingleTree;
        else if (s == "marking") {
          options.strategy = Strategy::kHeuristicMarking;
        } else if (s == "greedy") {
          options.strategy = Strategy::kGreedy;
        }
      }
      // Sessions are single-prepare; strategy changes need a fresh shell.
      if (session_.prepared()) {
        std::printf("already prepared\n");
        return true;
      }
      Status st = session_.Prepare();
      if (!st.ok()) {
        std::printf("prepare failed: %s\n", st.ToString().c_str());
        return true;
      }
      std::printf("%s", ExplainPlan(session_.memo(), session_.plan()).c_str());
    } else if (cmd == ".plan") {
      if (!session_.prepared()) {
        std::printf("not prepared yet\n");
        return true;
      }
      std::printf("%s", ExplainPlan(session_.memo(), session_.plan()).c_str());
    } else if (cmd == ".check") {
      auto checks = session_.CheckAssertions();
      if (!checks.ok()) {
        std::printf("error: %s\n", checks.status().ToString().c_str());
        return true;
      }
      for (const AssertionCheck& check : *checks) {
        std::printf("%s\n", check.ToString().c_str());
      }
      if (checks->empty()) std::printf("(no assertions declared)\n");
    } else if (cmd == ".consistency") {
      Status st = session_.CheckConsistency();
      std::printf("%s\n", st.ok() ? "consistent" : st.ToString().c_str());
    } else if (cmd == ".io") {
      std::printf("%s\n", session_.counter().ToString().c_str());
    } else if (cmd == ".threads") {
      if (words.size() == 1) {
        std::printf("maintain threads: %d\n", session_.maintain_threads());
      } else {
        int n = 0;
        try {
          n = std::stoi(words[1]);
        } catch (...) {
          n = 0;
        }
        if (n < 1) {
          std::printf("usage: .threads [N]   (N >= 1)\n");
          return true;
        }
        session_.SetMaintainThreads(n);
        std::printf("maintain threads: %d\n", session_.maintain_threads());
      }
    } else if (cmd == ".shards") {
      if (words.size() == 1) {
        std::printf("shards: %d\n", session_.shard_count());
        // Per-shard counter scopes (storage.[label.]shard.<i>.* and the
        // maintain.shard.* routing counters), pulled from the live
        // metrics snapshot.
        const obs::MetricsSnapshot snapshot =
            obs::MetricsRegistry::Global().Snapshot();
        for (const auto& counter : snapshot.counters) {
          if (counter.name.find("shard.") != std::string::npos &&
              counter.value != 0) {
            std::printf("  %-48s %lld\n", counter.name.c_str(),
                        static_cast<long long>(counter.value));
          }
        }
      } else {
        int n = 0;
        try {
          n = std::stoi(words[1]);
        } catch (...) {
          n = 0;
        }
        if (n < 1) {
          std::printf("usage: .shards [N]   (N >= 1)\n");
          return true;
        }
        Status st = session_.SetShardCount(n);
        if (!st.ok()) {
          std::printf("error: %s\n", st.ToString().c_str());
          return true;
        }
        std::printf("shards: %d\n", session_.shard_count());
      }
    } else if (cmd == ".shardkey") {
      if (words.size() < 3) {
        std::printf("usage: .shardkey <table> <attr> [attr...]\n");
        return true;
      }
      std::vector<std::string> attrs(words.begin() + 2, words.end());
      session_.SetShardKey(words[1], attrs);
      std::printf("shard key of %s: (", words[1].c_str());
      for (size_t i = 0; i < attrs.size(); ++i) {
        std::printf("%s%s", i > 0 ? "," : "", attrs[i].c_str());
      }
      std::printf(") — applies at CREATE TABLE\n");
    } else if (cmd == ".metrics") {
      const obs::MetricsSnapshot snapshot =
          obs::MetricsRegistry::Global().Snapshot();
      std::printf("%s", snapshot.ToTable().c_str());
    } else if (cmd == ".fail") {
      FailpointRegistry& reg = FailpointRegistry::Global();
      if (words.size() == 1) {
        for (const std::string& name : reg.Names()) {
          std::printf("%-30s %-8s hits=%lld triggers=%lld\n", name.c_str(),
                      reg.armed(name) ? "ARMED" : "off",
                      static_cast<long long>(reg.hits(name)),
                      static_cast<long long>(reg.triggers(name)));
        }
      } else if (words[1] == "off") {
        if (words.size() > 2) {
          reg.Disarm(words[2]);
        } else {
          reg.DisarmAll();
        }
        std::printf("ok\n");
      } else if (words.size() == 3) {
        // Reuse the AUXVIEW_FAILPOINTS spec grammar: name=N or name=pP.
        Status st = reg.LoadSpec(words[1] + "=" + words[2]);
        std::printf("%s\n", st.ok() ? "armed" : st.ToString().c_str());
      } else {
        std::printf("usage: .fail | .fail <name> <N|pP> | .fail off [name]\n");
      }
    } else if (cmd == ".wal") {
      if (words.size() < 2) {
        std::printf("usage: .wal <dir> [commit|checkpoint|never] [every-N]\n");
        return true;
      }
      DatabaseOptions options;
      options.wal_dir = words[1];
      size_t next = 2;
      if (words.size() > next) {
        const std::string& policy = words[next];
        if (policy == "commit") {
          options.wal_fsync = WalFsync::kCommit;
          ++next;
        } else if (policy == "checkpoint") {
          options.wal_fsync = WalFsync::kCheckpoint;
          ++next;
        } else if (policy == "never") {
          options.wal_fsync = WalFsync::kNever;
          ++next;
        }
      }
      if (words.size() > next) {
        options.wal_checkpoint_every = std::atoll(words[next].c_str());
      }
      Status st = session_.OpenWal(options);
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        return true;
      }
      std::printf("wal attached at %s\n", options.wal_dir.c_str());
      if (session_.db().wal()->recovery_pending()) {
        std::printf("durable state found — run your DDL/.workload, then "
                    ".recover\n");
      }
    } else if (cmd == ".checkpoint") {
      Status st = session_.Checkpoint();
      std::printf("%s\n", st.ok() ? "checkpointed" : st.ToString().c_str());
    } else if (cmd == ".recover") {
      Status st = session_.Recover();
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        return true;
      }
      const RecoveryInfo& info = session_.last_recovery();
      if (!info.recovered) {
        std::printf("log is empty; nothing to recover\n");
      } else {
        std::printf("recovered to lsn %llu: checkpoint=%s, %lld txn(s) "
                    "replayed%s\n",
                    static_cast<unsigned long long>(info.last_lsn),
                    info.had_checkpoint ? "yes" : "no",
                    static_cast<long long>(info.replayed),
                    info.truncated_tail_bytes > 0 ? " (torn tail truncated)"
                                                  : "");
      }
    } else if (cmd == ".reset-io") {
      session_.db().counter().Reset();
      std::printf("ok\n");
    } else if (cmd == ".session") {
      SessionCommand(words);
    } else if (cmd == ".commit") {
      TxnSession* txn = ActiveTxn();
      if (txn == nullptr) {
        std::printf("no concurrent session active (.session open)\n");
        return true;
      }
      auto outcome = txn->Commit();
      if (!outcome.ok()) {
        std::printf("error: %s\n", outcome.status().ToString().c_str());
        return true;
      }
      switch (outcome->kind) {
        case CommitOutcome::Kind::kCommitted:
          std::printf("committed at epoch %llu\n",
                      static_cast<unsigned long long>(outcome->epoch));
          break;
        case CommitOutcome::Kind::kConflict:
          std::printf("CONFLICT: %s\n"
                      "staged changes kept — .retry for a fresh snapshot "
                      "(then re-run), or .abort to drop them\n",
                      outcome->detail.c_str());
          break;
        case CommitOutcome::Kind::kRejected:
          std::printf("REJECTED: assertion %s would be violated "
                      "(staged changes dropped)\n",
                      outcome->detail.c_str());
          break;
      }
    } else if (cmd == ".abort") {
      TxnSession* txn = ActiveTxn();
      if (txn == nullptr) {
        std::printf("no concurrent session active (.session open)\n");
        return true;
      }
      txn->Abort();
      std::printf("aborted; fresh snapshot at epoch %llu\n",
                  static_cast<unsigned long long>(txn->snapshot_epoch()));
    } else if (cmd == ".retry") {
      TxnSession* txn = ActiveTxn();
      if (txn == nullptr) {
        std::printf("no concurrent session active (.session open)\n");
        return true;
      }
      txn->Restart();
      std::printf("retrying on snapshot epoch %llu — re-run your "
                  "statements, then .commit\n",
                  static_cast<unsigned long long>(txn->snapshot_epoch()));
    } else {
      std::printf("unknown command %s (.help for help)\n", cmd.c_str());
    }
    return true;
  }

  void SessionCommand(const std::vector<std::string>& words) {
    const std::string sub = words.size() > 1 ? words[1] : "list";
    if (sub == "list") {
      std::printf("%c main (serial, owning session)\n",
                  active_.empty() ? '*' : ' ');
      for (const auto& [name, txn] : txn_sessions_) {
        std::printf("%c %s (snapshot epoch %llu%s)\n",
                    name == active_ ? '*' : ' ', name.c_str(),
                    static_cast<unsigned long long>(txn->snapshot_epoch()),
                    txn->dirty() ? ", staged changes" : "");
      }
    } else if (sub == "open") {
      if (!session_.prepared()) {
        std::printf(".session open requires .prepare first\n");
        return;
      }
      const std::string name =
          words.size() > 2 ? words[2] : "s" + std::to_string(++session_seq_);
      if (name == "main" || txn_sessions_.count(name) > 0) {
        std::printf("session %s already exists\n", name.c_str());
        return;
      }
      Status enabled = session_.EnableConcurrency();
      if (!enabled.ok()) {
        std::printf("error: %s\n", enabled.ToString().c_str());
        return;
      }
      auto txn = session_.OpenSession();
      if (!txn.ok()) {
        std::printf("error: %s\n", txn.status().ToString().c_str());
        return;
      }
      std::printf("session %s open at snapshot epoch %llu\n", name.c_str(),
                  static_cast<unsigned long long>((*txn)->snapshot_epoch()));
      txn_sessions_[name] = std::move(*txn);
      active_ = name;
    } else if (sub == "switch") {
      if (words.size() < 3) {
        std::printf("usage: .session switch <name|main>\n");
        return;
      }
      const std::string& name = words[2];
      if (name == "main") {
        active_.clear();
        std::printf("now on main (serial session)\n");
      } else if (txn_sessions_.count(name) > 0) {
        active_ = name;
        std::printf("now on %s (snapshot epoch %llu)\n", name.c_str(),
                    static_cast<unsigned long long>(
                        txn_sessions_[name]->snapshot_epoch()));
      } else {
        std::printf("no such session: %s\n", name.c_str());
      }
    } else if (sub == "close") {
      const std::string name = words.size() > 2 ? words[2] : active_;
      auto it = txn_sessions_.find(name);
      if (name.empty() || it == txn_sessions_.end()) {
        std::printf("no such session%s%s\n", name.empty() ? "" : ": ",
                    name.c_str());
        return;
      }
      if (it->second->dirty()) {
        std::printf("dropping staged changes of %s\n", name.c_str());
      }
      txn_sessions_.erase(it);
      if (active_ == name) active_.clear();
      std::printf("session %s closed\n", name.c_str());
    } else {
      std::printf("usage: .session [open [name] | switch <name|main> | "
                  "close [name] | list]\n");
    }
  }

  LineReader reader_;
  Session session_;
  std::vector<TransactionType> workload_;
  std::map<std::string, std::unique_ptr<TxnSession>> txn_sessions_;
  std::string active_;  // "" = the serial owning session
  int session_seq_ = 0;
};

}  // namespace

int main() { return Shell().Run(); }
